"""The trace differ: run alignment, attribution ranking, loaders, HTML."""

import json

import pytest

from repro.bench.history import BenchHistory, BenchRecord
from repro.telemetry.analyze import compare_counters
from repro.telemetry.diff import (
    RunView,
    counter_scalar,
    diff_counter_payloads,
    diff_records,
    diff_runs,
    load_view,
    select_record,
    sniff_payload_kind,
)
from repro.telemetry.events import EventBus, TID_RT, Telemetry


def _task(bus, template, key, start, end, rank=0, tid=0):
    bus.complete(template, rank, tid, start, end, cat="task",
                 args={"key": repr(key), "template": template})


def _dep(bus, src, dst):
    bus.instant("dep", 0, TID_RT, cat="dep", src=src, dst=dst)


def _diamond(b_end=3.0):
    """A -> (B, C) -> D; stretching B's arm models a slowdown."""
    bus = EventBus(capacity=None)
    _task(bus, "A", 0, 0.0, 1.0)
    _task(bus, "B", 0, 1.0, b_end, tid=1)
    _task(bus, "C", 0, 1.0, 2.0, rank=1)
    _task(bus, "D", 0, b_end, b_end + 1.0)
    _dep(bus, "A[0]", "B[0]")
    _dep(bus, "A[0]", "C[0]")
    _dep(bus, "B[0]", "D[0]")
    _dep(bus, "C[0]", "D[0]")
    return bus


def _rec(makespan, templates, seed=0, baseline=False, **extra):
    return BenchRecord(app="potrf", config={"n": 512}, seed=seed,
                       makespan=makespan, gflops=100.0,
                       tasks_by_template=dict(templates),
                       baseline=baseline, **extra)


# ----------------------------------------------------------- counter core


def test_counter_scalar_forms():
    assert counter_scalar(3) == 3.0
    assert counter_scalar({"value": 2.5}) == 2.5
    assert counter_scalar({"total": 10.0, "count": 4}) == 10.0
    assert counter_scalar({"count": 4}) == 4.0
    assert counter_scalar({}) == 0.0


def test_diff_counter_payloads_aligns_missing_keys():
    rows = diff_counter_payloads({"counters": {"x": 1.0, "y": 2.0}},
                                 {"counters": {"y": 5.0, "z": 3.0}})
    assert rows == [("x", 1.0, 0.0, -1.0), ("y", 2.0, 5.0, 3.0),
                    ("z", 0.0, 3.0, 3.0)]


def test_compare_counters_is_the_same_alignment_path():
    # Satellite: `telemetry compare` folded into the diff engine -- the
    # analyze wrapper must return byte-identical rows.
    a = {"counters": {"k": {"total": 7.0}, "g": {"value": 1.0}}}
    b = {"counters": {"k": {"total": 9.0}}}
    assert compare_counters(a, b) == diff_counter_payloads(a, b)


# -------------------------------------------------------------- run views


def test_runview_from_bus_carries_spans_and_critical_path():
    view = RunView.from_bus(_diamond(), label="base")
    assert view.has_spans
    assert view.makespan == pytest.approx(4.0)
    assert view.templates["B"].total == pytest.approx(2.0)
    assert [lab for lab, _ in view.critical_path] == ["A[0]", "B[0]", "D[0]"]
    assert 0 in view.ranks and 1 in view.ranks


def test_runview_from_record_counts_only():
    rec = _rec(0.01, {"GEMM": 8, "TRSM": 4},
               bytes_by_protocol={"eager": 64.0},
               counters={"c.x": 2.0})
    view = RunView.from_record(rec)
    assert not view.has_spans
    assert view.templates["GEMM"].count == 8
    assert view.bytes_by_protocol == {"eager": 64.0}
    assert view.counters == {"c.x": 2.0}
    assert "potrf seed 0" in view.label


# ------------------------------------------------------------- the differ


def test_diff_runs_attributes_the_stretched_template():
    a = RunView.from_bus(_diamond(3.0), label="base")
    b = RunView.from_bus(_diamond(4.5), label="slow")
    d = diff_runs(a, b)
    assert d.has_spans
    assert d.makespan_delta == pytest.approx(1.5)
    ranked = d.ranked_templates()
    assert ranked[0].template == "B"
    assert ranked[0].delta == pytest.approx(1.5)
    shares = dict(d.attribution())
    # B's span total moved by exactly the makespan delta: share 1.0; no
    # opposite-direction mover is attributed.
    assert shares["B"] == pytest.approx(1.0)
    assert "C" not in shares
    text = d.format()
    assert "run diff: A = base   B = slow" in text
    assert "attribution" in text


def test_diff_runs_critical_path_churn():
    a = RunView.from_bus(_diamond(3.0), label="a")
    # Stretch C past B: the path detours through C.
    bus = EventBus(capacity=None)
    _task(bus, "A", 0, 0.0, 1.0)
    _task(bus, "B", 0, 1.0, 3.0, tid=1)
    _task(bus, "C", 0, 1.0, 5.0, rank=1)
    _task(bus, "D", 0, 5.0, 6.0)
    _dep(bus, "A[0]", "B[0]")
    _dep(bus, "A[0]", "C[0]")
    _dep(bus, "B[0]", "D[0]")
    _dep(bus, "C[0]", "D[0]")
    b = RunView.from_bus(bus, label="b")
    d = diff_runs(a, b)
    assert d.cp_entered == ["C[0]"]
    assert d.cp_left == ["B[0]"]
    common = [lab for lab, *_ in d.cp_common]
    assert common == ["A[0]", "D[0]"]
    assert "critical path" in d.format()


def test_diff_records_counts_rank_by_count_delta():
    a = _rec(0.010, {"GEMM": 8, "TRSM": 4}, baseline=True)
    b = _rec(0.013, {"GEMM": 14, "TRSM": 4})
    d = diff_records(a, b)
    assert not d.has_spans
    assert d.attribution() == []          # no span totals to attribute
    assert d.ranked_templates()[0].template == "GEMM"
    assert d.ranked_templates()[0].count_delta == 6


def test_diff_as_dict_schema():
    a = RunView.from_bus(_diamond(3.0), label="a")
    b = RunView.from_bus(_diamond(4.0), label="b")
    payload = diff_runs(a, b).as_dict()
    assert payload["schema"] == "repro.telemetry/diff-v1"
    for section in ("makespan", "templates", "attribution",
                    "bytes_by_protocol", "ranks", "critical_path",
                    "counters"):
        assert section in payload
    assert payload["templates"][0]["template"] == "B"


# ---------------------------------------------------------------- loaders


def test_sniff_payload_kind(tmp_path):
    from repro.telemetry.export import (
        write_chrome_trace,
        write_counters_json,
        write_jsonl,
    )

    tel = Telemetry(nranks=1)
    tel.bus.complete("T", 0, 0, 0.0, 1.0, cat="task",
                     args={"key": "0", "template": "T"})
    jsonl = str(tmp_path / "run.jsonl")
    trace = str(tmp_path / "run.trace.json")
    counters = str(tmp_path / "counters.json")
    write_jsonl(jsonl, tel)
    write_chrome_trace(trace, tel)
    write_counters_json(counters, tel)
    hist = BenchHistory("potrf", [_rec(0.01, {"T": 1})])
    bench = str(hist.save(directory=str(tmp_path)))

    assert sniff_payload_kind(jsonl) == "jsonl"
    assert sniff_payload_kind(trace) == "trace"
    assert sniff_payload_kind(counters) == "counters"
    assert sniff_payload_kind(bench) == "bench-history"

    bad = tmp_path / "bad.txt"
    bad.write_text("not json at all\n")
    with pytest.raises(ValueError):
        sniff_payload_kind(str(bad))


def test_select_record():
    recs = [_rec(0.010, {}, seed=0, baseline=True),
            _rec(0.012, {}, seed=1, baseline=True),
            _rec(0.011, {}, seed=2, baseline=True),
            _rec(0.015, {}, seed=0)]
    assert select_record(recs, "last") is recs[-1]
    assert select_record(recs, "baseline") is recs[2]   # median of baselines
    assert select_record(recs, "seed:0") is recs[-1]    # last of that seed
    assert select_record(recs, "index:1") is recs[1]
    with pytest.raises(ValueError):
        select_record([], "last")
    with pytest.raises(ValueError):
        select_record(recs, "seed:77")
    with pytest.raises(ValueError):
        select_record(recs, "bogus")


def test_load_view_dispatch(tmp_path):
    from repro.telemetry.export import write_jsonl

    tel = Telemetry(nranks=1)
    tel.bus.complete("T", 0, 0, 0.0, 1.0, cat="task",
                     args={"key": "0", "template": "T"})
    jsonl = str(tmp_path / "run.jsonl")
    write_jsonl(jsonl, tel)
    view = load_view(jsonl)
    assert view.has_spans and "T" in view.templates

    hist = BenchHistory("potrf", [_rec(0.01, {"T": 1}, baseline=True),
                                  _rec(0.02, {"T": 2})])
    bench = str(hist.save(directory=str(tmp_path)))
    assert load_view(bench, selector="last").templates["T"].count == 2
    assert load_view(bench, selector="baseline").templates["T"].count == 1


# ------------------------------------------------------------------- HTML


def test_diff_report_html_renders_all_sections(tmp_path):
    from repro.telemetry.report_html import write_diff_report_html

    bus_a, bus_b = _diamond(3.0), _diamond(4.5)
    d = diff_runs(RunView.from_bus(bus_a, label="base"),
                  RunView.from_bus(bus_b, label="slow"))
    out = str(tmp_path / "diff.html")
    nbytes = write_diff_report_html(out, d, bus_a=bus_a, bus_b=bus_b)
    html = (tmp_path / "diff.html").read_text()
    assert nbytes == len(html.encode())
    assert "sidebyside" in html          # dual Gantt lanes
    assert "worse" in html               # delta coloring
    assert "base" in html and "slow" in html
    assert "<svg" in html


# --------------------------------------------------------------------- CLI


def _cli(*argv):
    import io

    from repro.telemetry.cli import main

    out = io.StringIO()
    code = main(list(argv), stream=out)
    return code, out.getvalue()


def test_cli_diff_on_histories(tmp_path):
    hist = BenchHistory("potrf", [_rec(0.010, {"GEMM": 8}, baseline=True),
                                  _rec(0.013, {"GEMM": 8})])
    path = str(hist.save(directory=str(tmp_path)))
    code, text = _cli("diff", path, path)
    assert code == 0
    assert "run diff" in text
    code, text = _cli("diff", path, path, "--json")
    assert code == 0
    assert json.loads(text)["schema"] == "repro.telemetry/diff-v1"


def test_cli_diff_html_output(tmp_path):
    from repro.telemetry.export import write_jsonl

    tel = Telemetry(nranks=1)
    tel.bus.complete("T", 0, 0, 0.0, 1.0, cat="task",
                     args={"key": "0", "template": "T"})
    jsonl = str(tmp_path / "run.jsonl")
    write_jsonl(jsonl, tel)
    out = str(tmp_path / "d.html")
    code, text = _cli("diff", jsonl, jsonl, "--html", out)
    assert code == 0
    assert f"wrote {out}" in text
    assert "sidebyside" in (tmp_path / "d.html").read_text()


def test_cli_diff_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.txt"
    bad.write_text("nope\n")
    code, text = _cli("diff", str(bad), str(bad))
    assert code == 1
    assert "not a JSON" in text


def test_cli_compare_is_deprecated_alias(tmp_path):
    payload = {"schema": "repro.telemetry/counters-v1",
               "counters": {"x": 1.0}}
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(payload))
    b.write_text(json.dumps(dict(payload, counters={"x": 3.0})))
    code, text = _cli("compare", str(a), str(b))
    assert code == 0
    assert "deprecated" in text
    assert "use 'diff'" in text
    assert "x" in text and "+2" in text
