"""ShardedEngine honours the full sequential-engine contract, plus the
shard/window behaviour that is specific to it."""

import pytest

from repro.sim.cluster import Cluster, HAWK
from repro.sim.engine import Engine, EngineError
from repro.sim.sharded import ENGINE_KINDS, ShardedEngine, create_engine


def make_engines():
    return [
        Engine(),
        ShardedEngine(nshards=1),
        ShardedEngine(nshards=4, lookahead=0.5),
        ShardedEngine(nshards=4, lookahead=0.0),
    ]


def engine_ids():
    return ["seq", "sharded1", "sharded4", "sharded4-zero-la"]


@pytest.fixture(params=range(4), ids=engine_ids())
def eng(request):
    return make_engines()[request.param]


# ------------------------------------------------- shared contract


def test_runs_in_time_order(eng):
    hits = []
    eng.schedule(2.0, hits.append, "late", rank=1)
    eng.schedule(1.0, hits.append, "early", rank=2)
    eng.schedule(3.0, hits.append, "last", rank=3)
    eng.run()
    assert hits == ["early", "late", "last"]


def test_ties_break_by_schedule_order_across_shards(eng):
    hits = []
    for i in range(10):
        eng.schedule(1.0, hits.append, i, rank=i)
    eng.run()
    assert hits == list(range(10))


def test_zero_delay_events_run_after_current(eng):
    hits = []

    def outer():
        eng.schedule(0.0, hits.append, "inner", rank=3)
        hits.append("outer")

    eng.schedule(1.0, outer, rank=0)
    eng.run()
    assert hits == ["outer", "inner"]


def test_cancel_skips_event(eng):
    hits = []
    ev = eng.schedule(1.0, hits.append, "cancelled", rank=1)
    eng.schedule(2.0, hits.append, "kept", rank=2)
    ev.cancel()
    eng.run()
    assert hits == ["kept"]


def test_empty_accounts_for_cancelled(eng):
    ev = eng.schedule(1.0, lambda: None, rank=2)
    assert not eng.empty()
    ev.cancel()
    assert eng.empty()


def test_run_until_stops_clock(eng):
    hits = []
    eng.schedule(1.0, hits.append, 1, rank=0)
    eng.schedule(5.0, hits.append, 5, rank=1)
    eng.run(until=2.0)
    assert hits == [1]
    assert eng.now == 2.0
    eng.run()
    assert hits == [1, 5]


def test_run_max_events(eng):
    hits = []
    for i in range(5):
        eng.schedule(float(i + 1), hits.append, i, rank=i)
    eng.run(max_events=2)
    assert hits == [0, 1]
    eng.run()
    assert hits == [0, 1, 2, 3, 4]


def test_step_executes_globally_next_event(eng):
    hits = []
    eng.schedule(2.0, hits.append, "b", rank=1)
    eng.schedule(1.0, hits.append, "a", rank=3)
    assert eng.step() is True
    assert hits == ["a"]
    assert eng.step() is True
    assert eng.step() is False
    assert hits == ["a", "b"]


def test_reset(eng):
    eng.schedule(1.0, lambda: None, rank=1)
    eng.run()
    eng.reset()
    assert eng.now == 0.0
    assert eng.empty()
    assert eng.events_processed == 0


def test_reentrant_run_raises(eng):
    eng.schedule(1.0, eng.run)
    with pytest.raises(EngineError):
        eng.run()


def test_schedule_in_past_raises(eng):
    eng.schedule(1.0, lambda: None)
    eng.run()
    with pytest.raises(EngineError):
        eng.schedule_at(0.5, lambda: None)


def test_pending_counts_batch_members(eng):
    eng.schedule_batch(1.0, [(print, ()), (print, ())], rank=1)
    eng.schedule(2.0, print, rank=2)
    assert eng.pending == 3


def test_schedule_batch_preserves_order(eng):
    hits = []
    eng.schedule(1.0, hits.append, "before", rank=0)
    eng.schedule_batch(1.0, [(hits.append, (i,)) for i in range(5)], rank=1)
    eng.schedule(1.0, hits.append, "after", rank=2)
    eng.run()
    assert hits == ["before", 0, 1, 2, 3, 4, "after"]


def test_schedule_batch_cancel_member(eng):
    hits = []
    evs = eng.schedule_batch(1.0, [(hits.append, (i,)) for i in range(4)])
    evs[2].cancel()
    eng.run()
    assert hits == [0, 1, 3]


def test_schedule_batch_max_events_resumes_mid_burst(eng):
    hits = []
    eng.schedule_batch(1.0, [(hits.append, (i,)) for i in range(6)], rank=1)
    eng.run(max_events=4)
    assert hits == [0, 1, 2, 3]
    eng.run()
    assert hits == [0, 1, 2, 3, 4, 5]


def test_exception_preserves_burst_tail(eng):
    hits = []

    def boom():
        raise RuntimeError("boom")

    eng.schedule_batch(
        1.0, [(hits.append, (0,)), (boom, ()), (hits.append, (2,))], rank=1
    )
    with pytest.raises(RuntimeError):
        eng.run()
    eng.run()
    assert hits == [0, 2]


def test_determinism_same_schedule_same_trace(eng):
    def build(e):
        hits = []
        for i in range(50):
            e.schedule((i * 7) % 5 * 0.25, hits.append, i, rank=i % 3)
        e.run()
        return hits

    fresh = type(eng)() if type(eng) is Engine else ShardedEngine(
        nshards=eng.nshards, lookahead=eng.lookahead)
    assert build(eng) == build(fresh)


# --------------------------------------------- sharded-specific


def test_rank_routes_to_shard():
    eng = ShardedEngine(nshards=4, lookahead=1.0)
    eng.schedule(1.0, lambda: None, rank=2)
    eng.schedule(1.0, lambda: None, rank=6)   # 6 % 4 == 2
    eng.schedule(1.0, lambda: None)           # unranked -> shard 0
    assert eng.shard_pending == [1, 0, 2, 0]
    assert eng.shard_scheduled == [1, 0, 2, 0]


def test_window_stats_accumulate():
    eng = ShardedEngine(nshards=2, lookahead=1.0)
    for i in range(8):
        eng.schedule(float(i) * 0.25, lambda: None, rank=i)
    eng.run()
    assert eng.windows_executed >= 1
    assert eng.max_batch >= 1
    assert eng.events_processed == 8


def test_events_inside_open_window_interleave_exactly():
    # An event scheduled during a window, with a timestamp inside that
    # window, must run in exact (time, seq) position -- not at the window
    # boundary.
    eng = ShardedEngine(nshards=2, lookahead=10.0)
    hits = []

    def first():
        hits.append("first")
        eng.schedule(1.0, hits.append, "injected", rank=1)

    eng.schedule(0.0, first, rank=0)
    eng.schedule(2.0, hits.append, "second", rank=0)
    eng.run()
    assert hits == ["first", "injected", "second"]


def test_bind_topology_via_cluster():
    cluster = Cluster(HAWK, 8, engine=ShardedEngine())
    eng = cluster.engine
    assert eng.nshards == 8
    assert eng.lookahead == HAWK.network.lookahead == HAWK.network.latency


def test_bind_topology_respects_explicit_shards():
    cluster = Cluster(HAWK, 8, engine=ShardedEngine(nshards=2, lookahead=5.0))
    assert cluster.engine.nshards == 2
    assert cluster.engine.lookahead == 5.0


def test_adaptive_window_grows_above_lookahead_floor():
    eng = ShardedEngine(nshards=2, lookahead=1e-9)
    for i in range(200):
        eng.schedule(float(i), lambda: None, rank=i)
    eng.run()
    # Tiny lookahead + sparse events: adaptation must have widened the
    # window well beyond one-event-per-window.
    assert eng.windows_executed < 200


def test_create_engine_kinds():
    from repro.sim.mpshard import MpShardedEngine

    assert type(create_engine("seq")) is Engine
    sharded = create_engine("sharded", nranks=4)
    assert isinstance(sharded, ShardedEngine) and sharded.nshards == 4
    mp_eng = create_engine("mp", nranks=2)
    assert isinstance(mp_eng, MpShardedEngine)
    assert isinstance(mp_eng, ShardedEngine)  # fallback path is inherited
    mp_eng._release_arena()
    with pytest.raises(ValueError):
        create_engine("bogus")
    assert set(ENGINE_KINDS) == {"seq", "sharded", "mp"}


def test_shard_clocks_match_engine_clock():
    eng = ShardedEngine(nshards=3, lookahead=1.0)
    eng.schedule(2.0, lambda: None, rank=1)
    eng.run()
    assert eng.shard_clocks == [2.0, 2.0, 2.0]
