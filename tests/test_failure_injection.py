"""Failure injection: user errors must surface loudly, never corrupt state.

The simulator executes everything inline, so a failing task body, reducer,
keymap, cost function or serializer must propagate out of ``fence`` as the
original exception (with the run left diagnosable) -- silent loss of work
is the one unacceptable outcome, and the termination validator guards it.
"""

import pytest

from repro import core as ttg
from repro.runtime import ParsecBackend
from repro.runtime.termination import TerminationError
from repro.sim.cluster import Cluster, HAWK


def backend(n=2):
    return ParsecBackend(Cluster(HAWK, n))


def test_body_exception_propagates():
    class Boom(RuntimeError):
        pass

    def body(key, outs):
        raise Boom("task body failed")

    T = ttg.make_tt(body, [], [], keymap=lambda k: 0)
    ex = ttg.TaskGraph([T]).executable(backend(1))
    ex.invoke(T, 0)
    with pytest.raises(Boom, match="task body failed"):
        ex.fence()


def test_downstream_body_exception_propagates():
    e = ttg.Edge("x")

    def src(key, outs):
        outs.send(0, key, 1)

    def sink(key, v, outs):
        raise ValueError("sink exploded")

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    K = ttg.make_tt(sink, [e], [], keymap=lambda k: 1)
    ex = ttg.TaskGraph([S, K]).executable(backend(2))
    ex.invoke(S, 0)
    with pytest.raises(ValueError, match="sink exploded"):
        ex.fence()


def test_reducer_exception_propagates():
    e = ttg.Edge("s")

    def src(key, outs):
        outs.send(0, "k", 1)
        outs.send(0, "k", 2)

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    C = ttg.make_tt(lambda k, v, outs: None, [e], [], keymap=lambda k: 0)

    def bad_reducer(a, b):
        raise ZeroDivisionError("reducer failed")

    C.set_input_reducer(0, bad_reducer, size=2)
    ex = ttg.TaskGraph([S, C]).executable(backend(1))
    ex.invoke(S, 0)
    with pytest.raises(ZeroDivisionError):
        ex.fence()


def test_keymap_exception_propagates():
    e = ttg.Edge("x")

    def src(key, outs):
        outs.send(0, key, 1)

    def bad_keymap(key):
        raise KeyError("no placement for you")

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    K = ttg.make_tt(lambda k, v, outs: None, [e], [], keymap=bad_keymap)
    ex = ttg.TaskGraph([S, K]).executable(backend(1))
    ex.invoke(S, 0)
    with pytest.raises(KeyError):
        ex.fence()


def test_cost_fn_exception_propagates():
    e = ttg.Edge("x")

    def src(key, outs):
        outs.send(0, key, 1)

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    K = ttg.make_tt(lambda k, v, outs: None, [e], [], keymap=lambda k: 0,
                    cost=lambda k, v: 1 / 0)
    ex = ttg.TaskGraph([S, K]).executable(backend(1))
    ex.invoke(S, 0)
    with pytest.raises(ZeroDivisionError):
        ex.fence()


def test_unserializable_value_remote_send():
    e = ttg.Edge("x")

    def src(key, outs):
        outs.send(0, key, lambda: None)  # lambdas don't pickle

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    K = ttg.make_tt(lambda k, v, outs: None, [e], [], keymap=lambda k: 1)
    ex = ttg.TaskGraph([S, K]).executable(backend(2))
    ex.invoke(S, 0)
    with pytest.raises(TypeError):
        ex.fence()


def test_unserializable_value_local_send_is_fine():
    """Local deliveries never serialize -- closures may flow rank-locally,
    exactly as in the C++ runtime."""
    e = ttg.Edge("x")
    got = []

    def src(key, outs):
        outs.send(0, key, lambda: 42, mode="move")

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    K = ttg.make_tt(lambda k, v, outs: got.append(v()), [e], [],
                    keymap=lambda k: 0)
    ex = ttg.TaskGraph([S, K]).executable(backend(2))
    ex.invoke(S, 0)
    ex.fence()
    assert got == [42]


def test_lost_message_detected_by_termination():
    be = backend(2)
    be.termination.message_sent()  # simulate a message the network ate
    with pytest.raises(TerminationError, match="lost work"):
        be.run()


def test_state_diagnosable_after_failure():
    """After a body failure, the executable still reports its pending
    instances (the stuck dependents) instead of hiding them."""
    e1, e2 = ttg.Edge("a"), ttg.Edge("b")

    def src(key, outs):
        outs.send(0, key, 1)  # feeds only terminal a; b never arrives
        raise RuntimeError("failed after partial sends")

    S = ttg.make_tt(src, [], [e1], keymap=lambda k: 0)
    K = ttg.make_tt(lambda k, a, b, outs: None, [e1, e2], [],
                    keymap=lambda k: 0)
    ex = ttg.TaskGraph([S, K]).executable(backend(1))
    ex.invoke(S, 7)
    with pytest.raises(RuntimeError):
        ex.fence()
    # the half-fed instance is visible for post-mortem
    assert ex.pending_instances >= 0
