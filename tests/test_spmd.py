"""Tests for the SPMD (mpi4py-style) layer."""

import numpy as np
import pytest

from repro.sim.cluster import Cluster, HAWK
from repro.spmd import SpmdError, run_spmd


def cluster(n=4):
    return Cluster(HAWK, n)


def test_send_recv_pair():
    got = {}

    def program(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, {"x": 42})
        elif ctx.rank == 1:
            msg = yield ctx.recv(0)
            got["msg"] = msg

    t = run_spmd(cluster(2), program)
    assert got["msg"] == {"x": 42}
    assert t > 0


def test_recv_any_source():
    got = []

    def program(ctx):
        if ctx.rank == 0:
            for _ in range(3):
                v = yield ctx.recv()
                got.append(v)
        else:
            yield ctx.send(0, ctx.rank)

    run_spmd(cluster(4), program)
    assert sorted(got) == [1, 2, 3]


def test_tag_matching():
    got = []

    def program(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, "a", tag=7)
            yield ctx.send(1, "b", tag=9)
        else:
            v9 = yield ctx.recv(0, tag=9)
            v7 = yield ctx.recv(0, tag=7)
            got.extend([v9, v7])

    run_spmd(cluster(2), program)
    assert got == ["b", "a"]


def test_ring_pass():
    """Token circulates the ring; each rank adds its id."""
    out = {}

    def program(ctx):
        nxt = (ctx.rank + 1) % ctx.size
        if ctx.rank == 0:
            yield ctx.send(nxt, 0)
            total = yield ctx.recv()
            out["total"] = total
        else:
            v = yield ctx.recv()
            yield ctx.send(nxt, v + ctx.rank)

    run_spmd(cluster(5), program)
    assert out["total"] == sum(range(5))


def test_bcast():
    got = []

    def program(ctx):
        value = "root-data" if ctx.rank == 2 else None
        v = yield ctx.bcast(value, root=2)
        got.append((ctx.rank, v))

    run_spmd(cluster(4), program)
    assert sorted(got) == [(r, "root-data") for r in range(4)]


def test_allreduce():
    got = []

    def program(ctx):
        total = yield ctx.allreduce(ctx.rank + 1)
        got.append(total)

    run_spmd(cluster(4), program)
    assert got == [10, 10, 10, 10]


def test_barrier_synchronizes_time():
    times = {}

    def program(ctx):
        if ctx.rank == 0:
            yield ctx.compute(2.5e10, workers=1)  # 1 second on one worker
        yield ctx.barrier()
        times[ctx.rank] = ctx  # placeholder; just reach here

    cl = cluster(3)
    t = run_spmd(cl, program)
    # nobody passes the barrier before rank 0's compute finished
    assert t >= 2.5e10 / HAWK.node.flops_per_worker


def test_compute_charges_time():
    def program(ctx):
        # one worker explicitly: exactly 1 second
        yield ctx.compute(HAWK.node.flops_per_worker, workers=1)

    t = run_spmd(cluster(1), program)
    assert t == pytest.approx(1.0, rel=0.01)


def test_compute_node_parallel_by_default():
    def program(ctx):
        yield ctx.compute(HAWK.node.flops_per_worker * HAWK.node.workers)

    t = run_spmd(cluster(1), program)
    assert t == pytest.approx(1.0, rel=0.01)


def test_large_send_charges_wire_time():
    def program(ctx):
        payload = np.zeros(1_000_000)  # 8 MB
        if ctx.rank == 0:
            yield ctx.send(1, payload)
        else:
            yield ctx.recv(0)

    t = run_spmd(cluster(2), program)
    assert t >= 8e6 / HAWK.network.bandwidth


def test_deadlock_detected():
    def program(ctx):
        yield ctx.recv()  # everyone waits, nobody sends

    with pytest.raises(SpmdError, match="deadlock"):
        run_spmd(cluster(2), program)


def test_collective_mismatch_deadlock():
    def program(ctx):
        if ctx.rank == 0:
            yield ctx.barrier()
        # rank 1 exits without the barrier

    with pytest.raises(SpmdError, match="deadlock"):
        run_spmd(cluster(2), program)


def test_send_invalid_rank():
    def program(ctx):
        yield ctx.send(99, "x")

    with pytest.raises(SpmdError):
        run_spmd(cluster(2), program)


def test_non_generator_program():
    with pytest.raises(SpmdError):
        run_spmd(cluster(1), lambda ctx: None)


def test_determinism():
    def build():
        trace = []

        def program(ctx):
            for round_ in range(3):
                v = yield ctx.allreduce(ctx.rank * round_)
                trace.append((ctx.rank, v))
                yield ctx.compute(1e6 * (ctx.rank + 1))
            yield ctx.barrier()

        t = run_spmd(cluster(3), program)
        return trace, t

    a, ta = build()
    b, tb = build()
    assert a == b and ta == tb


def test_spmd_stencil_exchange():
    """1-D halo exchange: each rank averages with neighbours' boundary."""
    n = 4
    results = {}

    def program(ctx):
        value = float(ctx.rank)
        left = (ctx.rank - 1) % ctx.size
        right = (ctx.rank + 1) % ctx.size
        yield ctx.send(left, value, tag=1)
        yield ctx.send(right, value, tag=2)
        from_right = yield ctx.recv(right, tag=1)
        from_left = yield ctx.recv(left, tag=2)
        yield ctx.compute(1e6)
        results[ctx.rank] = (from_left + value + from_right) / 3

    run_spmd(cluster(n), program)
    for r in range(n):
        expect = (((r - 1) % n) + r + ((r + 1) % n)) / 3
        assert results[r] == pytest.approx(expect)


def test_spmd_bulk_sync_fw_supertile():
    """An actual SPMD implementation of the supertile FW round structure
    (one supertile per rank, broadcasts per round) -- its virtual time
    should land within 3x of the analytic fork-join model, validating the
    analytic baselines against an executable program."""
    from repro.baselines import forkjoin_fw

    nodes, n, b = 4, 1024, 64
    machine = HAWK.with_workers(4)
    r_grid = 2
    s = n // r_grid
    super_bytes = s * s * 8

    def program(ctx):
        if ctx.rank >= r_grid * r_grid:
            return
            yield  # pragma: no cover
        i, j = divmod(ctx.rank, r_grid)
        from repro.linalg.kernels import effective_flops

        work = effective_flops(2.0 * s**3, b)
        for k in range(r_grid):
            if i == k and j == k:
                yield ctx.compute(work)
            yield ctx.bcast(None, root=k * r_grid + k, nbytes=super_bytes)
            if i == k or j == k:
                yield ctx.compute(work)
            yield ctx.bcast(None, root=k * r_grid + (k + 1) % r_grid,
                            nbytes=super_bytes)
            if i != k and j != k:
                yield ctx.compute(work)
            yield ctx.barrier()

    t_spmd = run_spmd(Cluster(machine, nodes), program)
    t_model = forkjoin_fw(Cluster(machine, nodes), n, b).makespan
    assert 0.3 < t_spmd / t_model < 3.0, (t_spmd, t_model)


def test_gather():
    got = {}

    def program(ctx):
        result = yield ctx.gather(ctx.rank * 10, root=1)
        got[ctx.rank] = result

    run_spmd(cluster(4), program)
    assert got[1] == [0, 10, 20, 30]
    assert got[0] is None and got[2] is None


def test_scatter():
    got = {}

    def program(ctx):
        values = [f"item-{r}" for r in range(ctx.size)] if ctx.rank == 0 else None
        v = yield ctx.scatter(values, root=0)
        got[ctx.rank] = v

    run_spmd(cluster(3), program)
    assert got == {0: "item-0", 1: "item-1", 2: "item-2"}


def test_scatter_requires_full_values():
    def program(ctx):
        values = ["only-one"] if ctx.rank == 0 else None
        yield ctx.scatter(values, root=0)

    with pytest.raises(SpmdError, match="one value per rank"):
        run_spmd(cluster(3), program)


def test_gather_scatter_roundtrip():
    """scatter(gather(x)) is the identity on per-rank values."""
    got = {}

    def program(ctx):
        x = (ctx.rank + 1) ** 2
        all_vals = yield ctx.gather(x, root=0)
        back = yield ctx.scatter(all_vals, root=0)
        got[ctx.rank] = back

    run_spmd(cluster(4), program)
    assert got == {r: (r + 1) ** 2 for r in range(4)}
