"""Per-rule tests for the static flow-graph linter (repro.analysis.lint).

Each test constructs a minimal deliberately-defective graph and asserts
the linter reports exactly the expected rule.
"""

import warnings

import pytest

from repro import core as ttg
from repro.analysis import LINT_RULE_IDS, all_rules, get_rule, lint_graph, lint_ptg
from repro.core import Executable, GraphConstructionError, Void
from repro.runtime import ParsecBackend
from repro.sim import Cluster, HAWK


def _backend(n=4):
    return ParsecBackend(Cluster(HAWK, n))


def _noop(key, *args):
    pass


def ids_of(findings):
    return sorted({f.rule.id for f in findings})


def findings_for(graph, rule_id, **kw):
    return [f for f in lint_graph(graph, **kw) if f.rule.id == rule_id]


# --------------------------------------------------------------- rule catalog


def test_rule_catalog_is_complete():
    assert len(LINT_RULE_IDS) >= 8
    for rid in LINT_RULE_IDS:
        rule = get_rule(rid)
        assert rule.severity in ("info", "warning", "error")
        assert rule.title and rule.hint
    assert {r.id for r in all_rules()} >= set(LINT_RULE_IDS)


# ------------------------------------------------------------ TTG001 / TTG002


def test_ttg001_unfed_input():
    e = ttg.Edge("unfed", key_type=int)
    sink = ttg.make_tt(_noop, [e], [], name="SINK")
    g = ttg.TaskGraph([sink], name="g")
    fs = findings_for(g, "TTG001")
    assert len(fs) == 1
    assert fs[0].rule.severity == "info"
    assert "no producer" in fs[0].message
    assert fs[0].location == "g/SINK.in0"


def test_ttg002_dangling_output():
    e = ttg.Edge("dangling", key_type=int)
    src = ttg.make_tt(_noop, [], [e], name="SRC")
    g = ttg.TaskGraph([src], name="g")
    fs = findings_for(g, "TTG002")
    assert len(fs) == 1
    assert fs[0].rule.severity == "warning"
    assert "no consumer" in fs[0].message


def test_connected_pair_is_clean():
    e = ttg.Edge("ab", key_type=int, value_type=int)
    a = ttg.make_tt(_noop, [], [e], name="A")
    b = ttg.make_tt(_noop, [e], [], name="B")
    assert lint_graph(ttg.TaskGraph([a, b])) == []


# ------------------------------------------------------------------- TTG003


def test_ttg003_disjoint_key_types():
    ei = ttg.Edge("ik", key_type=int, value_type=int)
    es = ttg.Edge("sk", key_type=str, value_type=int)
    a = ttg.make_tt(_noop, [], [ei], name="A")
    b = ttg.make_tt(_noop, [], [es], name="B")
    c = ttg.make_tt(_noop, [ei, es], [], name="C")
    g = ttg.TaskGraph([a, b, c])
    fs = findings_for(g, "TTG003")
    assert len(fs) == 1
    assert fs[0].rule.severity == "error"
    assert "never match" in fs[0].message


def test_ttg003_compatible_key_types_ok():
    e1 = ttg.Edge("k1", key_type=int)
    e2 = ttg.Edge("k2", key_type=int)
    a = ttg.make_tt(_noop, [], [e1, e2], name="A")
    b = ttg.make_tt(_noop, [e1, e2], [], name="B")
    assert findings_for(ttg.TaskGraph([a, b]), "TTG003") == []


# ------------------------------------------------------------------- TTG004


def _cycle_pair():
    e1 = ttg.Edge("xy", key_type=int)
    e2 = ttg.Edge("yx", key_type=int)
    x = ttg.make_tt(_noop, [e2], [e1], name="X")
    y = ttg.make_tt(_noop, [e1], [e2], name="Y")
    return x, y


def test_ttg004_unreachable_cycle():
    x, y = _cycle_pair()
    g = ttg.TaskGraph([x, y])
    fs = findings_for(g, "TTG004")
    assert {f.location.split("/")[-1] for f in fs} == {"X", "Y"}


def test_ttg004_waiver_marks_template_as_source():
    # Waiving X declares "seeded externally": Y becomes reachable too.
    x, y = _cycle_pair()
    x.lint_waive("TTG004")
    assert findings_for(ttg.TaskGraph([x, y]), "TTG004") == []


# ------------------------------------------------------------------- TTG005


def _stream_cycle(static_size=None):
    e1 = ttg.Edge("ab", key_type=int, value_type=int)
    e2 = ttg.Edge("ba", key_type=int, value_type=int)
    a = ttg.make_tt(_noop, [e2], [e1], name="A")
    b = ttg.make_tt(_noop, [e1], [e2], name="B")
    b.set_input_reducer(0, lambda acc, x: acc, size=static_size)
    return a, b


def test_ttg005_unbounded_stream_in_cycle():
    a, b = _stream_cycle()
    fs = findings_for(ttg.TaskGraph([a, b]), "TTG005")
    assert len(fs) == 1
    assert "deadlock" in fs[0].message
    assert "A" in fs[0].message and "B" in fs[0].message


def test_ttg005_static_size_is_fine():
    a, b = _stream_cycle(static_size=4)
    assert findings_for(ttg.TaskGraph([a, b]), "TTG005") == []


def test_ttg005_waiver():
    a, b = _stream_cycle()
    b.lint_waive("TTG005")
    assert findings_for(ttg.TaskGraph([a, b]), "TTG005") == []


# ------------------------------------------------------------------- TTG006


def _map_graph(keymap=None, priomap=None):
    e = ttg.Edge("e", key_type=int, value_type=int)
    a = ttg.make_tt(_noop, [], [e], name="A")
    b = ttg.make_tt(_noop, [e], [], name="B", keymap=keymap, priomap=priomap)
    return ttg.TaskGraph([a, b])


def test_ttg006_out_of_range_keymap():
    g = _map_graph(keymap=lambda k: 99)
    fs = findings_for(g, "TTG006", nranks=4)
    assert len(fs) == 1
    assert "out of range" in fs[0].message
    assert fs[0].rule.severity == "error"


def test_ttg006_never_an_int():
    g = _map_graph(keymap=lambda k: "rank0")
    fs = findings_for(g, "TTG006", nranks=4)
    assert len(fs) == 1
    assert "not an int rank" in fs[0].message


def test_ttg006_nondeterministic_keymap():
    state = {"n": 0}

    def flappy(key):
        state["n"] += 1
        return state["n"] % 2

    fs = findings_for(_map_graph(keymap=flappy), "TTG006", nranks=4)
    assert len(fs) == 1
    assert "not a function of the task ID" in fs[0].message


def test_ttg006_partial_domain_maps_are_not_flagged():
    # Maps that only understand their real key shape (tuples, here) may
    # return garbage for other probe shapes; that is not a finding.
    assert findings_for(_map_graph(keymap=lambda key: key[0] % 4),
                        "TTG006", nranks=4) == []
    assert findings_for(_map_graph(keymap=lambda k: k % 4),
                        "TTG006", nranks=4) == []


def test_ttg006_no_nranks_skips_range_check():
    assert findings_for(_map_graph(keymap=lambda k: 99), "TTG006") == []


# ------------------------------------------------------------------- TTG007


def test_ttg007_bad_priomap():
    fs = findings_for(_map_graph(priomap=lambda k: "high"), "TTG007")
    assert len(fs) == 1
    assert "not an int" in fs[0].message


def test_ttg007_partial_domain_priomap_ok():
    assert findings_for(_map_graph(priomap=lambda key: 100 - key[0]),
                        "TTG007") == []


# ------------------------------------------------------- TTG008 / TTG010 (PTG)


def _ptg(dests=lambda key: (), mode="cref"):
    cls = ttg.TaskClass(
        "GEN", kernel=lambda key, data: None,
        flows=[ttg.Flow("x", dests=dests, mode=mode)],
    )
    return ttg.PTG([cls])


def test_ttg008_unknown_class_reference():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        p = _ptg(dests=lambda key: [("NOPE", key, "x")])
    fs = [f for f in lint_ptg(p) if f.rule.id == "TTG008"]
    assert len(fs) == 1
    assert "unknown task class 'NOPE'" in fs[0].message


def test_ttg008_unknown_flow_reference():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        p = _ptg(dests=lambda key: [("GEN", key + 1, "zz")])
    fs = [f for f in lint_ptg(p) if f.rule.id == "TTG008"]
    assert len(fs) == 1
    assert "unknown flow GEN.'zz'" in fs[0].message


def test_ttg010_invalid_mode():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        p = _ptg(mode="zap")
    fs = [f for f in lint_ptg(p) if f.rule.id == "TTG010"]
    assert len(fs) == 1
    assert "'zap'" in fs[0].message
    assert fs[0].rule.severity == "error"


def test_ptg_graphs_skip_structural_rules():
    # All-to-all PTG wiring must not trip reachability/cycle rules.
    p = _ptg(dests=lambda key: [("GEN", key + 1, "x")] if key == 0 else [])
    ids = ids_of(lint_ptg(p))
    assert "TTG004" not in ids and "TTG005" not in ids


# ------------------------------------------------------------------- TTG009


def test_ttg009_void_stream():
    e = ttg.Edge("ctl", key_type=int, value_type=Void)
    a = ttg.make_tt(_noop, [], [e], name="A")
    b = ttg.make_tt(_noop, [e], [], name="B")
    b.set_input_reducer(0, lambda acc, x: acc, size=2)
    fs = findings_for(ttg.TaskGraph([a, b]), "TTG009")
    assert len(fs) == 1
    assert "Void" in fs[0].message


# ----------------------------------------------------- strict mode / validate


def _broken_graph():
    """Graph with one error-severity finding (TTG003)."""
    ei = ttg.Edge("ik", key_type=int)
    es = ttg.Edge("sk", key_type=str)
    a = ttg.make_tt(_noop, [], [ei], name="A")
    b = ttg.make_tt(_noop, [], [es], name="B")
    c = ttg.make_tt(_noop, [ei, es], [], name="C")
    return ttg.TaskGraph([a, b, c])


def test_strict_make_raises_with_rule_id():
    with pytest.raises(GraphConstructionError) as exc:
        Executable.make(_broken_graph(), _backend(), strict=True)
    assert exc.value.rule == "TTG003"
    assert "TTG003" in str(exc.value)


def test_default_make_warns_and_proceeds():
    with pytest.warns(RuntimeWarning, match="TTG lint: TTG003"):
        ex = Executable.make(_broken_graph(), _backend())
    assert any(f.rule.id == "TTG003" for f in ex.findings)
    assert ex.sanitizer is None  # not armed unless strict/sanitize


def test_clean_graph_strict_make_passes():
    e = ttg.Edge("ab", key_type=int, value_type=int)
    a = ttg.make_tt(_noop, [], [e], name="A", keymap=lambda k: k % 4)
    b = ttg.make_tt(_noop, [e], [], name="B", keymap=lambda k: 0)
    ex = Executable.make(ttg.TaskGraph([a, b]), _backend(), strict=True)
    assert ex.findings == []
    assert ex.sanitizer is not None and ex.sanitizer.strict


def test_validate_wraps_linter():
    e = ttg.Edge("unfed", key_type=int)
    sink = ttg.make_tt(_noop, [e], [], name="SINK")
    out = ttg.TaskGraph([sink], name="g").validate()
    assert len(out) == 1
    assert out[0].startswith("TTG001 [info] g/SINK.in0:")


def test_lint_ignore_list():
    e = ttg.Edge("unfed", key_type=int)
    sink = ttg.make_tt(_noop, [e], [], name="SINK")
    g = ttg.TaskGraph([sink])
    assert ids_of(lint_graph(g)) == ["TTG001"]
    assert lint_graph(g, ignore=("TTG001",)) == []


def test_lint_waive_is_chainable():
    e = ttg.Edge("unfed", key_type=int)
    sink = ttg.make_tt(_noop, [e], [], name="SINK").lint_waive("TTG001")
    assert lint_graph(ttg.TaskGraph([sink])) == []
