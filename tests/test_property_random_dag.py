"""Whole-stack property test: random layered DAGs executed as TTGs.

Hypothesis generates a random layered DAG (random widths, random edges
between consecutive layers, random integer weights); we express it as a
TTG (one template per layer, streaming-reducer inputs with per-key dynamic
sizes) and check the distributed execution computes exactly the same node
values as a sequential topological evaluation, on both backends, for any
rank count.
"""

from typing import Dict, List, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import core as ttg
from repro.runtime import MadnessBackend, ParsecBackend
from repro.sim.cluster import Cluster, HAWK

_settings = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def layered_dags(draw):
    nlayers = draw(st.integers(min_value=2, max_value=4))
    widths = [draw(st.integers(min_value=1, max_value=4)) for _ in range(nlayers)]
    edges = []  # ((layer, i) -> (layer+1, j), weight)
    for l in range(nlayers - 1):
        for j in range(widths[l + 1]):
            # every node needs at least one predecessor
            preds = draw(
                st.lists(
                    st.integers(min_value=0, max_value=widths[l] - 1),
                    min_size=1,
                    max_size=widths[l],
                    unique=True,
                )
            )
            for i in preds:
                w = draw(st.integers(min_value=-5, max_value=5))
                edges.append(((l, i), (l + 1, j), w))
    seeds = [draw(st.integers(min_value=-10, max_value=10)) for _ in range(widths[0])]
    nranks = draw(st.integers(min_value=1, max_value=5))
    return widths, edges, seeds, nranks


def sequential_eval(widths, edges, seeds) -> Dict[Tuple[int, int], int]:
    values = {(0, i): seeds[i] for i in range(widths[0])}
    by_dst: Dict[Tuple[int, int], List] = {}
    for src, dst, w in edges:
        by_dst.setdefault(dst, []).append((src, w))
    for l in range(1, len(widths)):
        for j in range(widths[l]):
            values[(l, j)] = sum(
                values[src] * w for src, w in by_dst.get((l, j), [])
            )
    return values


@given(layered_dags())
@_settings
def test_random_dag_matches_sequential(dag):
    widths, edges, seeds, nranks = dag
    expect = sequential_eval(widths, edges, seeds)
    by_src: Dict[Tuple[int, int], List] = {}
    indeg: Dict[Tuple[int, int], int] = {}
    for src, dst, w in edges:
        by_src.setdefault(src, []).append((dst, w))
        indeg[dst] = indeg.get(dst, 0) + 1

    for backend_cls in (ParsecBackend, MadnessBackend):
        got: Dict[Tuple[int, int], int] = {}
        layer_edges = [ttg.Edge(f"l{l}") for l in range(len(widths))]
        tts = []

        def make_body(l):
            def body(key, acc, outs):
                node = (l, key)
                got[node] = acc
                for (dl, dj), w in by_src.get(node, []):
                    outs.send(0, dj, acc * w)

            return body

        for l in range(len(widths)):
            outs_edges = [layer_edges[l + 1]] if l + 1 < len(widths) else []
            tt = ttg.make_tt(
                make_body(l), [layer_edges[l]], outs_edges,
                name=f"L{l}", keymap=lambda j, l=l: (j + l) % nranks,
            )
            tt.set_input_reducer(0, lambda a, b: a + b)
            tts.append(tt)

        ex = ttg.TaskGraph(tts).executable(backend_cls(Cluster(HAWK, nranks)))
        # dynamic stream sizes: layer-0 nodes get 1 seed; others in-degree
        for i in range(widths[0]):
            ex.set_argstream_size(tts[0], 0, i, 1)
            ex.inject(tts[0], 0, i, seeds[i])
        for l in range(1, len(widths)):
            for j in range(widths[l]):
                ex.set_argstream_size(tts[l], 0, j, indeg.get((l, j), 0))
        ex.fence()
        # nodes with zero in-degree (unreached) fire with None; drop them
        got = {k: v for k, v in got.items() if v is not None}
        expect_nonzero = {
            k: v for k, v in expect.items()
            if k[0] == 0 or indeg.get(k, 0) > 0
        }
        assert got == expect_nonzero, backend_cls.__name__
