"""Tests for edges, terminals, template tasks and keymaps."""

import pytest

from repro.core.edge import Edge, Void, edges
from repro.core.exceptions import (
    GraphConstructionError,
    TypeMismatchError,
)
from repro.core.keymap import (
    block_cyclic_keymap,
    constant_keymap,
    hash_keymap,
    round_robin_keymap,
    subtree_keymap,
    zero_priomap,
)
from repro.core.task import make_tt


# -------------------------------------------------------------------- edges


def test_edge_type_checks():
    e = Edge("e", key_type=int, value_type=str)
    e.check_key(3)
    e.check_value("ok")
    with pytest.raises(TypeMismatchError):
        e.check_key("three")
    with pytest.raises(TypeMismatchError):
        e.check_value(3)


def test_edge_void_types():
    e = Edge("ctl", key_type=Void, value_type=Void)
    e.check_key(None)
    e.check_value(None)
    with pytest.raises(TypeMismatchError):
        e.check_key(1)
    with pytest.raises(TypeMismatchError):
        e.check_value(1)


def test_edge_unchecked_by_default():
    e = Edge("any")
    e.check_key(object())
    e.check_value(object())


def test_void_cannot_instantiate():
    with pytest.raises(TypeError):
        Void()


def test_edges_helper():
    a, b = Edge("a"), Edge("b")
    assert edges(a, b) == (a, b)
    with pytest.raises(TypeError):
        edges(a, "not an edge")


def test_edge_names_unique_by_default():
    assert Edge().name != Edge().name


# ------------------------------------------------------------ template task


def body(key, outs):
    pass


def test_make_tt_terminals_bound_to_edges():
    e1, e2, e3 = Edge("in1"), Edge("in2"), Edge("out1")
    tt = make_tt(lambda key, a, b, outs: None, [e1, e2], [e3], name="T")
    assert tt.num_inputs == 2 and tt.num_outputs == 1
    assert e1.consumers == [(tt, 0)]
    assert e2.consumers == [(tt, 1)]
    assert e3.producers == [(tt, 0)]


def test_make_tt_requires_callable():
    with pytest.raises(GraphConstructionError):
        make_tt("not callable", [], [])


def test_default_keymap_stable_and_in_range():
    tt = make_tt(body, [], [], name="T")
    r1 = tt.keymap((1, 2), 8)
    assert 0 <= r1 < 8
    assert tt.keymap((1, 2), 8) == r1


def test_keymap_out_of_range_rejected():
    tt = make_tt(body, [], [], keymap=lambda k: 99)
    with pytest.raises(GraphConstructionError):
        tt.keymap(0, 4)


def test_priority_and_cost_defaults():
    tt = make_tt(body, [], [])
    assert tt.priority("anything") == 0
    assert tt.cost("k", []) == (0.0, 0.0)


def test_cost_scalar_and_tuple_forms():
    tt = make_tt(body, [], [], cost=lambda k: 5.0)
    assert tt.cost(0, []) == (5.0, 0.0)
    tt2 = make_tt(body, [], []).set_cost(lambda k: (5.0, 7.0))
    assert tt2.cost(0, []) == (5.0, 7.0)


def test_set_input_reducer_by_name_and_index():
    e = Edge("in")
    tt = make_tt(lambda key, x, outs: None, [e], [], input_names=["acc"])
    tt.set_input_reducer("acc", lambda a, b: a + b, size=4)
    term = tt.in_terminal(0)
    assert term.is_streaming and term.static_stream_size == 4


def test_reducer_cannot_be_set_twice():
    e = Edge("in")
    tt = make_tt(lambda key, x, outs: None, [e], [])
    tt.set_input_reducer(0, lambda a, b: a)
    with pytest.raises(GraphConstructionError):
        tt.set_input_reducer(0, lambda a, b: a)


def test_reducer_size_must_be_positive():
    e = Edge("in")
    tt = make_tt(lambda key, x, outs: None, [e], [])
    with pytest.raises(GraphConstructionError):
        tt.set_input_reducer(0, lambda a, b: a, size=0)


def test_in_terminal_unknown_name():
    tt = make_tt(lambda key, x, outs: None, [Edge()], [])
    with pytest.raises(GraphConstructionError):
        tt.in_terminal("missing")


# ------------------------------------------------------------------ keymaps


def test_hash_keymap_range_and_stability():
    km = hash_keymap(7)
    ranks = [km((i, i + 1)) for i in range(100)]
    assert all(0 <= r < 7 for r in ranks)
    assert ranks == [hash_keymap(7)((i, i + 1)) for i in range(100)]
    assert len(set(ranks)) > 1  # actually spreads


def test_round_robin_keymap():
    km = round_robin_keymap(4)
    assert km(5) == 1
    assert km((6, 0)) == 2


def test_block_cyclic_keymap():
    km = block_cyclic_keymap(2, 3)
    assert km((0, 0)) == 0
    assert km((0, 1)) == 1
    assert km((1, 0)) == 3
    assert km((3, 4)) == (3 % 2) * 3 + (4 % 3)


def test_constant_keymap():
    km = constant_keymap(2)
    assert km("anything") == 2


def test_subtree_keymap_keeps_subtrees_together():
    km = subtree_keymap(16, target_level=2)
    # Deep boxes map with their level-2 ancestor.
    base = km((0, 2, (1, 3)))
    assert km((0, 3, (2, 6))) == base
    assert km((0, 5, (8, 24))) == base
    # Boxes above the target level map individually.
    assert 0 <= km((0, 0, (0, 0))) < 16


def test_subtree_keymap_distinguishes_functions():
    km = subtree_keymap(64, target_level=2)
    ranks = {km((fid, 2, (1, 1))) for fid in range(40)}
    assert len(ranks) > 5


def test_zero_priomap():
    assert zero_priomap("x") == 0
