"""Tests for the PTG front-end and the data-injection helpers."""

import numpy as np
import pytest

from repro import core as ttg
from repro.core.exceptions import GraphConstructionError
from repro.core.inject import make_initiator, make_matrix_initiator, seed_initiator
from repro.core.ptg import PTG, Flow, TaskClass
from repro.linalg import BlockCyclicDistribution, TiledMatrix
from repro.runtime import ParsecBackend
from repro.sim.cluster import Cluster, HAWK


def backend(nnodes=4):
    return ParsecBackend(Cluster(HAWK, nnodes))


# -------------------------------------------------------------------- inject


def test_make_initiator_routes_items():
    e1 = ttg.Edge("odd")
    e2 = ttg.Edge("even")
    got = []
    sink1 = ttg.make_tt(lambda k, v, outs: got.append(("odd", k, v)),
                        [e1], [], keymap=lambda k: 0)
    sink2 = ttg.make_tt(lambda k, v, outs: got.append(("even", k, v)),
                        [e2], [], keymap=lambda k: 0)
    init = make_initiator(
        range(6),
        owner_of=lambda x: x % 4,
        route=lambda x: ((0, x, x * 10) if x % 2 else (1, x, x * 10)),
        output_edges=[e1, e2],
    )
    ex = ttg.TaskGraph([init, sink1, sink2]).executable(backend())
    seed_initiator(ex, init)
    ex.fence()
    assert sorted(got) == sorted(
        [("odd", x, x * 10) if x % 2 else ("even", x, x * 10) for x in range(6)]
    )


def test_matrix_initiator_clones_tiles():
    e = ttg.Edge("tiles")
    m = TiledMatrix.from_dense(np.arange(16.0).reshape(4, 4), 2,
                               BlockCyclicDistribution(2, 2))
    got = {}

    def sink(key, tile, outs):
        tile.data += 1  # mutate the received copy
        got[key] = tile

    sink_tt = ttg.make_tt(sink, [e], [], keymap=lambda k: 0)
    init = make_matrix_initiator(m, lambda i, j, t: (0, (i, j), t), [e])
    ex = ttg.TaskGraph([init, sink_tt]).executable(backend())
    seed_initiator(ex, init)
    ex.fence()
    assert len(got) == 4
    # original matrix untouched by the sink's mutation
    assert np.array_equal(m.to_dense(), np.arange(16.0).reshape(4, 4))


def test_matrix_initiator_lower_only():
    e = ttg.Edge("tiles")
    m = TiledMatrix.from_dense(np.eye(4), 2, lower_only=False)
    keys = []
    sink_tt = ttg.make_tt(lambda k, t, outs: keys.append(k), [e], [],
                          keymap=lambda k: 0)
    init = make_matrix_initiator(m, lambda i, j, t: (0, (i, j), t), [e],
                                 lower_only=True)
    ex = ttg.TaskGraph([init, sink_tt]).executable(backend(1))
    seed_initiator(ex, init)
    ex.fence()
    assert sorted(keys) == [(0, 0), (1, 0), (1, 1)]


def test_executable_inject_matches_terminals():
    e1, e2 = ttg.Edge("a"), ttg.Edge("b")
    got = []
    T = ttg.make_tt(lambda k, a, b, outs: got.append((k, a, b)), [e1, e2], [],
                    keymap=lambda k: 0)
    ex = ttg.TaskGraph([T]).executable(backend(1))
    ex.inject(T, 0, "k", 1)
    ex.inject(T, 1, "k", 2)
    ex.fence()
    assert got == [("k", 1, 2)]


# ----------------------------------------------------------------------- PTG


def test_ptg_pipeline():
    """A 2-class PTG chain: GEN squares flow x and hands it to SINK."""
    got = {}

    def gen_kernel(key, data):
        data["x"] = data["x"] ** 2

    def sink_kernel(key, data):
        got[key] = data["x"]

    gen = TaskClass(
        "GEN",
        kernel=gen_kernel,
        flows=[Flow("x", dests=lambda k: [("SINK", k, "x")], mode="move")],
        keymap=lambda k: k % 4,
    )
    sink = TaskClass(
        "SINK", kernel=sink_kernel, flows=[Flow("x")], keymap=lambda k: 0
    )
    ptg = PTG([gen, sink])
    ex = ptg.executable(backend())
    for k in range(5):
        ptg.inject(ex, "GEN", "x", k, k + 1)
    ex.fence()
    assert got == {k: (k + 1) ** 2 for k in range(5)}


def test_ptg_chain_recurrence():
    """A PTG task class chaining into itself (k -> k+1), like SYRK chains."""
    out = {}

    def step_kernel(key, data):
        data["acc"] = data["acc"] + key

    def stop_kernel(key, data):
        out["total"] = data["acc"]

    n = 6
    step = TaskClass(
        "STEP",
        kernel=step_kernel,
        flows=[
            Flow(
                "acc",
                dests=lambda k: (
                    [("STEP", k + 1, "acc")] if k + 1 < n else [("STOP", 0, "acc")]
                ),
                mode="move",
            )
        ],
        keymap=lambda k: k % 3,
    )
    stop = TaskClass("STOP", kernel=stop_kernel, flows=[Flow("acc")],
                     keymap=lambda k: 0)
    ptg = PTG([step, stop])
    ex = ptg.executable(backend(3))
    ptg.inject(ex, "STEP", "acc", 0, 0)
    ex.fence()
    assert out["total"] == sum(range(n))


def test_ptg_fan_out_multiple_flows():
    """One class with two flows feeding two different consumers."""
    got = []

    def src_kernel(key, data):
        data["a"] = data["a"] * 2
        data["b"] = data["b"] + 1

    src = TaskClass(
        "SRC",
        kernel=src_kernel,
        flows=[
            Flow("a", dests=lambda k: [("CA", k, "v")]),
            Flow("b", dests=lambda k: [("CB", k, "v")]),
        ],
        keymap=lambda k: 0,
    )
    ca = TaskClass("CA", kernel=lambda k, d: got.append(("a", d["v"])),
                   flows=[Flow("v")], keymap=lambda k: 1)
    cb = TaskClass("CB", kernel=lambda k, d: got.append(("b", d["v"])),
                   flows=[Flow("v")], keymap=lambda k: 2)
    ptg = PTG([src, ca, cb])
    ex = ptg.executable(backend())
    ptg.inject(ex, "SRC", "a", 0, 10)
    ptg.inject(ex, "SRC", "b", 0, 10)
    ex.fence()
    assert sorted(got) == [("a", 20), ("b", 11)]


def test_ptg_unknown_destination_class():
    src = TaskClass(
        "SRC",
        kernel=lambda k, d: None,
        flows=[Flow("x", dests=lambda k: [("NOPE", k, "x")])],
        keymap=lambda k: 0,
    )
    ptg = PTG([src])
    ex = ptg.executable(backend(1))
    ptg.inject(ex, "SRC", "x", 0, 1)
    with pytest.raises(GraphConstructionError):
        ex.fence()


def test_ptg_validation():
    with pytest.raises(GraphConstructionError):
        PTG([])
    c = TaskClass("A", kernel=lambda k, d: None, flows=[Flow("x")])
    with pytest.raises(GraphConstructionError):
        PTG([c, TaskClass("A", kernel=lambda k, d: None, flows=[Flow("x")])])
    with pytest.raises(GraphConstructionError):
        PTG([TaskClass("B", kernel=lambda k, d: None, flows=[])])
    with pytest.raises(GraphConstructionError):
        PTG([TaskClass("C", kernel=lambda k, d: None,
                       flows=[Flow("x"), Flow("x")])])


def test_ptg_wavefront_sweep():
    """2-D wavefront: each cell depends on its north and west neighbours --
    the canonical PTG pattern; verified against a sequential sweep."""
    n = 5
    grid = {}

    def cell_kernel(key, data):
        i, j = key
        grid[key] = data["n"] + data["w"] + 1

    def dests(key):
        i, j = key
        out = []
        if i + 1 < n:
            out.append(("CELL", (i + 1, j), "n"))
        if j + 1 < n:
            out.append(("CELL", (i, j + 1), "w"))
        return out

    def cell_body(key, data):
        cell_kernel(key, data)
        # both flows forward the freshly computed value
        data["n"] = grid[key]
        data["w"] = grid[key]

    cell = TaskClass(
        "CELL",
        kernel=cell_body,
        flows=[Flow("n", dests=dests), Flow("w", dests=lambda k: ())],
        keymap=lambda key: (key[0] + key[1]) % 4,
    )
    ptg = PTG([cell])
    ex = ptg.executable(backend())
    # seed the boundary
    for i in range(n):
        for j in range(n):
            if i == 0:
                ptg.inject(ex, "CELL", "n", (i, j), 0)
            if j == 0:
                ptg.inject(ex, "CELL", "w", (i, j), 0)
    ex.fence()

    # sequential reference
    ref = {}
    for i in range(n):
        for j in range(n):
            north = ref[(i - 1, j)] if i > 0 else 0
            west = ref[(i, j - 1)] if j > 0 else 0
            ref[(i, j)] = north + west + 1
    assert grid == ref
