"""Tests for node/cluster/machine presets."""

import pytest

from repro.sim.cluster import Cluster, HAWK, SEAWULF, machine_by_name
from repro.sim.node import NodeSpec


def test_compute_time_flop_bound():
    node = NodeSpec(workers=4, flops_per_worker=1e9, mem_bandwidth=1e12,
                    task_overhead=0.0)
    assert node.compute_time(1e9) == pytest.approx(1.0)


def test_compute_time_memory_bound():
    node = NodeSpec(workers=4, flops_per_worker=1e12, mem_bandwidth=4e9,
                    task_overhead=0.0)
    # per-worker memory bandwidth is 1e9; 1e9 bytes -> 1 s
    assert node.compute_time(1.0, bytes_moved=1e9) == pytest.approx(1.0)


def test_compute_time_includes_overhead():
    node = NodeSpec(task_overhead=5e-6)
    assert node.compute_time(0.0) == pytest.approx(5e-6)


def test_copy_time_single_thread():
    node = NodeSpec(copy_bandwidth=2e9)
    assert node.copy_time(1e9) == pytest.approx(0.5)


def test_node_flops_aggregate():
    node = NodeSpec(workers=10, flops_per_worker=2e9)
    assert node.node_flops == pytest.approx(2e10)


def test_invalid_node_spec():
    with pytest.raises(ValueError):
        NodeSpec(workers=0)
    with pytest.raises(ValueError):
        NodeSpec(flops_per_worker=-1)


def test_machine_presets():
    assert HAWK.name == "hawk"
    assert SEAWULF.name == "seawulf"
    assert HAWK.node.workers == 60
    assert SEAWULF.node.workers == 38
    # Hawk's HDR-200 is faster than Seawulf's FDR
    assert HAWK.network.bandwidth > SEAWULF.network.bandwidth


def test_machine_by_name():
    assert machine_by_name("HAWK") is HAWK
    assert machine_by_name("seawulf") is SEAWULF
    with pytest.raises(KeyError):
        machine_by_name("frontier")


def test_with_workers():
    m = HAWK.with_workers(8)
    assert m.node.workers == 8
    assert m.network == HAWK.network
    assert HAWK.node.workers == 60  # original untouched


def test_cluster_properties():
    c = Cluster(HAWK, nnodes=4)
    assert c.nranks == 4
    assert c.total_workers == 240
    assert c.peak_gflops == pytest.approx(240 * HAWK.node.flops_per_worker / 1e9)
    assert c.network.nnodes == 4


def test_cluster_invalid():
    with pytest.raises(ValueError):
        Cluster(HAWK, nnodes=0)


def test_each_cluster_has_own_engine():
    c1 = Cluster(HAWK, 2)
    c2 = Cluster(HAWK, 2)
    assert c1.engine is not c2.engine
