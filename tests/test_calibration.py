"""Calibration guard: the machine constants documented in
docs/simulator.md and EXPERIMENTS.md must match the code, and basic
cost-model identities must hold exactly."""

import pytest

from repro.linalg.kernels import effective_flops, kernel_efficiency
from repro.sim.cluster import HAWK, SEAWULF
from repro.sim.network import NetworkSpec
from repro.sim.node import NodeSpec


def test_hawk_documented_constants():
    assert HAWK.node.workers == 60
    assert HAWK.node.flops_per_worker == 25.0e9
    assert HAWK.node.mem_bandwidth == 300.0e9
    assert HAWK.node.copy_bandwidth == 8.0e9
    assert HAWK.network.bandwidth == 24.0e9
    assert HAWK.network.latency == pytest.approx(1.1e-6)
    assert HAWK.network.eager_threshold == 8192


def test_seawulf_documented_constants():
    assert SEAWULF.node.workers == 38
    assert SEAWULF.node.flops_per_worker == 28.0e9
    assert SEAWULF.node.copy_bandwidth == 6.0e9
    assert SEAWULF.network.bandwidth == 6.8e9
    assert SEAWULF.network.latency == pytest.approx(1.3e-6)


def test_kernel_efficiency_documented_points():
    # docs/simulator.md: ~0.57 at b=64 and ~0.91 at b=512 (n_1/2 = 48)
    assert kernel_efficiency(64) == pytest.approx(64 / 112)
    assert kernel_efficiency(512) == pytest.approx(512 / 560)
    assert effective_flops(1.0, 48) == pytest.approx(2.0)


def test_roofline_identity():
    node = NodeSpec(workers=10, flops_per_worker=1e9, mem_bandwidth=10e9,
                    task_overhead=1e-6)
    # flop-bound task
    assert node.compute_time(2e9) == pytest.approx(2.0 + 1e-6)
    # memory-bound task: per-worker bandwidth is 1e9
    assert node.compute_time(1.0, bytes_moved=3e9) == pytest.approx(3.0 + 1e-6)


def test_transfer_time_identity():
    spec = NetworkSpec(latency=2e-6, bandwidth=10e9, eager_threshold=1000)
    from repro.sim.engine import Engine
    from repro.sim.network import NetworkModel

    net = NetworkModel(spec, 2, Engine())
    # eager: alpha + n/beta
    assert net.transfer_time(1000) == pytest.approx(2e-6 + 1000 / 10e9)
    # rendezvous adds 2 alpha
    assert net.transfer_time(1001) == pytest.approx(3 * 2e-6 + 1001 / 10e9)


def test_nominal_vs_real_tile_costs_agree():
    """A synthetic tile must be charged exactly like a real one."""
    import numpy as np

    from repro.linalg.tile import MatrixTile
    from repro.runtime import ParsecBackend
    from repro.sim.cluster import Cluster

    def one_send(tile):
        be = ParsecBackend(Cluster(HAWK, 2))
        be.send_value(0, 1, tile, lambda v: None)
        return be.run()

    t_synth = one_send(MatrixTile.synthetic(128, 128))
    t_real = one_send(MatrixTile(128, 128, np.zeros((128, 128))))
    assert t_synth == pytest.approx(t_real, rel=1e-3)
