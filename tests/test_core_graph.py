"""Tests for TaskGraph/Executable: delivery, broadcast, streams, errors."""

import pytest

from repro import core as ttg
from repro.core.exceptions import DeliveryError, GraphConstructionError, StreamError
from repro.runtime import MadnessBackend, ParsecBackend
from repro.runtime.base import BackendConfig
from repro.sim.cluster import Cluster, HAWK


def backend(nnodes=4, **cfg):
    config = BackendConfig(**cfg) if cfg else None
    return ParsecBackend(Cluster(HAWK, nnodes), config=config)


def test_two_stage_pipeline():
    e = ttg.Edge("a2b", key_type=int, value_type=int)
    got = {}

    def a(key, outs):
        outs.send(0, key + 100, key * 2)

    def b(key, v, outs):
        got[key] = v

    A = ttg.make_tt(a, [], [e], name="A", keymap=lambda k: k % 4)
    B = ttg.make_tt(b, [e], [], name="B", keymap=lambda k: k % 4)
    ex = ttg.TaskGraph([A, B]).executable(backend())
    for k in range(8):
        ex.invoke(A, k)
    ex.fence()
    assert got == {k + 100: k * 2 for k in range(8)}


def test_task_fires_once_all_inputs_arrive():
    e1 = ttg.Edge("x")
    e2 = ttg.Edge("y")
    fired = []

    def src(key, outs):
        outs.send(0, 0, "first")

    def src2(key, outs):
        outs.send(0, 0, "second")

    def sink(key, a, b, outs):
        fired.append((a, b))

    S1 = ttg.make_tt(src, [], [e1], keymap=lambda k: 0)
    S2 = ttg.make_tt(src2, [], [e2], keymap=lambda k: 1)
    K = ttg.make_tt(sink, [e1, e2], [], keymap=lambda k: 2)
    ex = ttg.TaskGraph([S1, S2, K]).executable(backend())
    ex.invoke(S1, 0)
    ex.invoke(S2, 0)
    ex.fence()
    assert fired == [("first", "second")]


def test_duplicate_input_raises():
    e = ttg.Edge("dup")
    never = ttg.Edge("never")

    def src(key, outs):
        outs.send(0, 7, 1)
        outs.send(0, 7, 2)  # same key twice into a non-streaming terminal

    # The sink has a second input that never arrives, so the instance is
    # still pending when the duplicate lands (a detectable program error;
    # re-using a task ID after the task ran is undefined, as in TTG).
    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    K = ttg.make_tt(lambda key, v, w, outs: None, [e, never], [], keymap=lambda k: 0)
    ex = ttg.TaskGraph([S, K]).executable(backend(1))
    ex.invoke(S, 0)
    with pytest.raises(DeliveryError):
        ex.fence()


def test_send_on_unconnected_terminal_raises():
    e_in = ttg.Edge("in")
    dangling = ttg.Edge("dangling")

    def body(key, v, outs):
        outs.send(0, key, v)

    T = ttg.make_tt(body, [e_in], [dangling], keymap=lambda k: 0)
    ex = ttg.TaskGraph([T]).executable(backend(1))
    ex.invoke(T, 0, [1])
    with pytest.raises(DeliveryError):
        ex.fence()


def test_invoke_arity_checked():
    T = ttg.make_tt(lambda key, a, b, outs: None, [ttg.Edge(), ttg.Edge()], [])
    ex = ttg.TaskGraph([T]).executable(backend(1))
    with pytest.raises(DeliveryError):
        ex.invoke(T, 0, [1])  # needs 2 args


def test_invoke_foreign_tt_rejected():
    T = ttg.make_tt(lambda key, outs: None, [], [])
    other = ttg.make_tt(lambda key, outs: None, [], [])
    ex = ttg.TaskGraph([T]).executable(backend(1))
    with pytest.raises(DeliveryError):
        ex.invoke(other, 0)


def test_fan_out_one_edge_two_consumers():
    e = ttg.Edge("fan")
    got = []

    def src(key, outs):
        outs.send(0, 1, "v")

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    C1 = ttg.make_tt(lambda k, v, outs: got.append(("c1", v)), [e], [], keymap=lambda k: 1)
    C2 = ttg.make_tt(lambda k, v, outs: got.append(("c2", v)), [e], [], keymap=lambda k: 2)
    ex = ttg.TaskGraph([S, C1, C2]).executable(backend())
    ex.invoke(S, 0)
    ex.fence()
    assert sorted(got) == [("c1", "v"), ("c2", "v")]


def test_optimized_broadcast_dedups_payloads():
    e = ttg.Edge("b")
    got = []

    def src(key, outs):
        outs.broadcast(0, list(range(8)), "payload")

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    C = ttg.make_tt(lambda k, v, outs: got.append(k), [e], [], keymap=lambda k: k % 4)
    be = backend(4)
    ex = ttg.TaskGraph([S, C]).executable(be)
    ex.invoke(S, 0)
    ex.fence()
    assert sorted(got) == list(range(8))
    # 8 keys over 4 ranks; rank 0 local => 3 remote payloads only.
    assert be.stats.broadcast_payloads_sent == 3
    assert be.stats.broadcast_keys_covered == 8


def test_naive_broadcast_sends_per_key():
    e = ttg.Edge("b")
    got = []

    def src(key, outs):
        outs.broadcast(0, list(range(8)), "payload")

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    C = ttg.make_tt(lambda k, v, outs: got.append(k), [e], [], keymap=lambda k: k % 4)
    be = backend(4, broadcast="naive")
    ex = ttg.TaskGraph([S, C]).executable(be)
    ex.invoke(S, 0)
    ex.fence()
    assert sorted(got) == list(range(8))
    assert be.stats.broadcast_payloads_sent == 0  # per-key path
    assert be.stats.remote_messages >= 6


def test_multi_terminal_broadcast_single_payload_per_rank():
    e1, e2 = ttg.Edge("t1"), ttg.Edge("t2")
    got = []

    def src(key, outs):
        outs.broadcast_multi([(0, [1, 2]), (1, [3])], "data")

    S = ttg.make_tt(src, [], [e1, e2], keymap=lambda k: 0)
    C1 = ttg.make_tt(lambda k, v, outs: got.append((1, k)), [e1], [], keymap=lambda k: 1)
    C2 = ttg.make_tt(lambda k, v, outs: got.append((2, k)), [e2], [], keymap=lambda k: 1)
    be = backend(2)
    ex = ttg.TaskGraph([S, C1, C2]).executable(be)
    ex.invoke(S, 0)
    ex.fence()
    assert sorted(got) == [(1, 1), (1, 2), (2, 3)]
    assert be.stats.broadcast_payloads_sent == 1  # all targets on rank 1


def test_control_broadcast_void_value():
    e = ttg.Edge("ctl")
    got = []

    def src(key, outs):
        outs.broadcast(0, [0, 1, 2, 3])

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    C = ttg.make_tt(lambda k, v, outs: got.append((k, v)), [e], [], keymap=lambda k: k)
    ex = ttg.TaskGraph([S, C]).executable(backend(4))
    ex.invoke(S, 0)
    ex.fence()
    assert sorted(got) == [(0, None), (1, None), (2, None), (3, None)]


def test_streaming_static_size():
    e = ttg.Edge("s")
    got = {}

    def src(key, outs):
        for i in range(5):
            outs.send(0, "acc", i)

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    C = ttg.make_tt(lambda k, total, outs: got.__setitem__(k, total), [e], [],
                    keymap=lambda k: 0)
    C.set_input_reducer(0, lambda a, b: a + b, size=5)
    ex = ttg.TaskGraph([S, C]).executable(backend(2))
    ex.invoke(S, 0)
    ex.fence()
    assert got == {"acc": 10}


def test_streaming_overflow_raises():
    e = ttg.Edge("s")
    never = ttg.Edge("never")

    def src(key, outs):
        for i in range(3):
            outs.send(0, "k", i)

    # A second never-satisfied input keeps the instance pending so the
    # third message overflows the bounded stream detectably.
    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    C = ttg.make_tt(lambda k, v, w, outs: None, [e, never], [], keymap=lambda k: 0)
    C.set_input_reducer(0, lambda a, b: a + b, size=2)
    ex = ttg.TaskGraph([S, C]).executable(backend(1))
    ex.invoke(S, 0)
    with pytest.raises(StreamError):
        ex.fence()


def test_streaming_dynamic_size_before_data():
    e = ttg.Edge("s")
    got = {}
    C = ttg.make_tt(lambda k, v, outs: got.__setitem__(k, v), [e], [],
                    keymap=lambda k: 0)
    C.set_input_reducer(0, lambda a, b: a + b)

    def src(key, outs):
        outs.send(0, "k", 1)
        outs.send(0, "k", 2)

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    ex = ttg.TaskGraph([S, C]).executable(backend(1))
    ex.set_argstream_size(C, 0, "k", 2)
    ex.invoke(S, 0)
    ex.fence()
    assert got == {"k": 3}


def test_streaming_size_zero_fires_immediately():
    e = ttg.Edge("s")
    got = []
    C = ttg.make_tt(lambda k, v, outs: got.append((k, v)), [e], [],
                    keymap=lambda k: 0)
    C.set_input_reducer(0, lambda a, b: a)
    ex = ttg.TaskGraph([C]).executable(backend(1))
    ex.set_argstream_size(C, 0, "k", 0)
    ex.fence()
    assert got == [("k", None)]


def test_streaming_conflicting_sizes():
    e = ttg.Edge("s")
    C = ttg.make_tt(lambda k, v, outs: None, [e], [], keymap=lambda k: 0)
    C.set_input_reducer(0, lambda a, b: a)
    ex = ttg.TaskGraph([C]).executable(backend(1))
    ex.set_argstream_size(C, 0, "k", 3)
    with pytest.raises(StreamError):
        ex.set_argstream_size(C, 0, "k", 4)


def test_set_size_on_non_streaming_terminal():
    e = ttg.Edge("s")
    C = ttg.make_tt(lambda k, v, outs: None, [e], [], keymap=lambda k: 0)
    ex = ttg.TaskGraph([C]).executable(backend(1))
    with pytest.raises(StreamError):
        ex.set_argstream_size(C, 0, "k", 3)


def test_stream_finalize_via_output_terminal():
    data = ttg.Edge("data")
    got = {}
    C = ttg.make_tt(lambda k, v, outs: got.__setitem__(k, v), [data], [],
                    keymap=lambda k: 0)
    C.set_input_reducer(0, lambda a, b: a + b)

    def src(key, outs):
        outs.send(0, "k", 10)
        outs.send(0, "k", 20)
        outs.finalize(0, "k")

    S = ttg.make_tt(src, [], [data], keymap=lambda k: 1)
    ex = ttg.TaskGraph([S, C]).executable(backend(2))
    ex.invoke(S, 0)
    ex.fence()
    assert got == {"k": 30}


def test_set_size_via_output_terminal_remote():
    data = ttg.Edge("data")
    got = {}
    C = ttg.make_tt(lambda k, v, outs: got.__setitem__(k, v), [data], [],
                    keymap=lambda k: 0)
    C.set_input_reducer(0, lambda a, b: a + b)

    def src(key, outs):
        outs.set_size(0, "k", 3)
        for i in range(3):
            outs.send(0, "k", i)

    S = ttg.make_tt(src, [], [data], keymap=lambda k: 1)
    ex = ttg.TaskGraph([S, C]).executable(backend(2))
    ex.invoke(S, 0)
    ex.fence()
    assert got == {"k": 3}


def test_cyclic_template_graph_feedback_loop():
    """Template graphs may contain cycles (only the task DAG is acyclic)."""
    loop = ttg.Edge("loop", key_type=int, value_type=int)
    done = []

    def step(key, v, outs):
        if key < 5:
            outs.send(0, key + 1, v + key)
        else:
            done.append(v)

    T = ttg.make_tt(step, [loop], [loop], name="LOOP", keymap=lambda k: k % 3)
    ex = ttg.TaskGraph([T]).executable(backend(3))
    ex.invoke(T, 0, [0])
    ex.fence()
    assert done == [sum(range(5))]


def test_free_function_send_inside_body():
    e = ttg.Edge("f")
    got = []

    def src(key, outs):
        ttg.send(0, key, "via-free-fn")  # no explicit outs

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    C = ttg.make_tt(lambda k, v, outs: got.append(v), [e], [], keymap=lambda k: 0)
    ex = ttg.TaskGraph([S, C]).executable(backend(1))
    ex.invoke(S, 0)
    ex.fence()
    assert got == ["via-free-fn"]


def test_free_function_outside_body_raises():
    with pytest.raises(DeliveryError):
        ttg.send(0, 0, "x")


def test_task_counts_and_pending():
    e = ttg.Edge("tc")

    def src(key, outs):
        outs.send(0, key, 1)

    S = ttg.make_tt(src, [], [e], name="SRC", keymap=lambda k: 0)
    C = ttg.make_tt(lambda k, v, outs: None, [e], [], name="SNK", keymap=lambda k: 0)
    ex = ttg.TaskGraph([S, C]).executable(backend(1))
    for k in range(3):
        ex.invoke(S, k)
    ex.fence()
    assert dict(ex.task_counts) == {"SRC": 3, "SNK": 3}
    assert ex.pending_instances == 0


def test_graph_validation_diagnostics():
    dangling_out = ttg.Edge("nowhere")
    unfed_in = ttg.Edge("unfed")
    T = ttg.make_tt(lambda k, v, outs: None, [unfed_in], [dangling_out], name="T")
    g = ttg.TaskGraph([T])
    issues = g.validate()
    assert any("unfed" in i for i in issues)
    assert any("nowhere" in i for i in issues)


def test_graph_requires_tasks_and_unique():
    with pytest.raises(GraphConstructionError):
        ttg.TaskGraph([])
    T = ttg.make_tt(lambda k, outs: None, [], [])
    with pytest.raises(GraphConstructionError):
        ttg.TaskGraph([T, T])


def test_to_dot():
    e = ttg.Edge("flow")
    A = ttg.make_tt(lambda k, outs: None, [], [e], name="A")
    B = ttg.make_tt(lambda k, v, outs: None, [e], [], name="B")
    dot = ttg.TaskGraph([A, B], name="g").to_dot()
    assert '"A" -> "B"' in dot and "digraph" in dot


def test_edges_listing():
    e1, e2 = ttg.Edge("e1"), ttg.Edge("e2")
    A = ttg.make_tt(lambda k, outs: None, [], [e1], name="A")
    B = ttg.make_tt(lambda k, v, outs: None, [e1], [e2], name="B")
    g = ttg.TaskGraph([A, B])
    names = {e.name for e in g.edges()}
    assert names == {"e1", "e2"}


def test_determinism_across_runs():
    def run():
        e = ttg.Edge("d")
        got = []

        def src(key, outs):
            outs.broadcast(0, list(range(6)), key)

        S = ttg.make_tt(src, [], [e], keymap=lambda k: k % 3)
        C = ttg.make_tt(lambda k, v, outs: got.append((k, v)), [e], [],
                        keymap=lambda k: k % 3)
        be = backend(3)
        ex = ttg.TaskGraph([S, C]).executable(be)
        for k in range(4):
            ex.invoke(S, k)
        t = ex.fence()
        return got, t

    g1, t1 = run()
    g2, t2 = run()
    assert g1 == g2 and t1 == t2


def test_madness_backend_runs_same_graph():
    e = ttg.Edge("m")
    got = []

    def src(key, outs):
        outs.send(0, key, key * 3)

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    C = ttg.make_tt(lambda k, v, outs: got.append(v), [e], [], keymap=lambda k: 1)
    ex = ttg.TaskGraph([S, C]).executable(MadnessBackend(Cluster(HAWK, 2)))
    for k in range(3):
        ex.invoke(S, k)
    ex.fence()
    assert sorted(got) == [0, 3, 6]


def test_typed_edge_enforced_at_send():
    e = ttg.Edge("typed", key_type=int, value_type=str)

    def src(key, outs):
        outs.send(0, "bad-key", "v")

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    C = ttg.make_tt(lambda k, v, outs: None, [e], [], keymap=lambda k: 0)
    ex = ttg.TaskGraph([S, C]).executable(backend(1))
    ex.invoke(S, 0)
    with pytest.raises(Exception):
        ex.fence()
