"""Tests for the MADNESS World (global namespace + RMI + fence)."""

import pytest

from repro.runtime.madness import MadnessBackend
from repro.runtime.world import World, WorldError
from repro.sim.cluster import Cluster, HAWK


class Counter:
    def __init__(self, rank, world):
        self.rank = rank
        self.value = 0

    def bump(self, by):
        self.value += by
        return self.value

    def read(self):
        return self.value


def make_world(nnodes=4):
    return World(MadnessBackend(Cluster(HAWK, nnodes)))


def test_register_creates_instance_per_rank():
    w = make_world()
    w.register("ctr", Counter)
    assert all(w.local("ctr", r).rank == r for r in range(4))


def test_double_register():
    w = make_world()
    w.register("ctr", Counter)
    with pytest.raises(WorldError):
        w.register("ctr", Counter)


def test_unknown_object():
    w = make_world()
    with pytest.raises(WorldError):
        w.local("nope", 0)


def test_local_rmi():
    w = make_world()
    w.register("ctr", Counter)
    fut = w.send(0, 0, "ctr", "bump", 5)
    w.fence()
    assert fut.get() == 5
    assert w.local("ctr", 0).value == 5


def test_remote_rmi_and_result_return():
    w = make_world()
    w.register("ctr", Counter)
    fut = w.send(0, 2, "ctr", "bump", 7)
    w.fence()
    assert fut.get() == 7
    assert w.local("ctr", 2).value == 7
    assert w.local("ctr", 0).value == 0


def test_rmi_charges_virtual_time():
    w = make_world()
    w.register("ctr", Counter)
    w.send(0, 1, "ctr", "bump", 1, nbytes=10**6)
    t = w.fence()
    assert t >= 10**6 / HAWK.network.bandwidth


def test_task_future():
    w = make_world()
    fut = w.task(1, lambda a, b: a * b, 6, 7, flops=1e6)
    w.fence()
    assert fut.get() == 42


def test_fence_drains_chains():
    w = make_world()
    w.register("ctr", Counter)
    done = []

    def chain(i):
        if i < 5:
            w.send(0, i % 4, "ctr", "bump", 1).add_callback(lambda _: chain(i + 1))
        else:
            done.append(True)

    chain(0)
    w.fence()
    assert done == [True]
    total = sum(w.local("ctr", r).value for r in range(4))
    assert total == 5
