"""Tests for the network model."""

import pytest

from repro.sim.engine import Engine
from repro.sim.network import NetworkModel, NetworkSpec


def make(nnodes=4, **kw):
    eng = Engine()
    spec = NetworkSpec(**kw)
    return NetworkModel(spec, nnodes, eng), eng


def test_transfer_time_alpha_beta():
    net, _ = make(latency=1e-6, bandwidth=1e9, eager_threshold=10**6)
    assert net.transfer_time(0) == pytest.approx(1e-6)
    assert net.transfer_time(1000) == pytest.approx(1e-6 + 1000 / 1e9)


def test_rendezvous_adds_handshake():
    net, _ = make(latency=1e-6, bandwidth=1e9, eager_threshold=100)
    small = net.transfer_time(100)
    large = net.transfer_time(101)
    assert large > small + 1.9e-6


def test_send_arrival_after_latency():
    net, eng = make(latency=1e-6, bandwidth=1e9)
    t = net.send(0, 1, 1000)
    assert t == pytest.approx(1e-6 + 1000 / 1e9)


def test_same_node_bypasses_nic():
    net, _ = make()
    t = net.send(2, 2, 10**9)
    # only software overhead, no wire time
    assert t < 1e-5
    assert net.bytes_sent == 0


def test_nic_injection_serializes():
    net, _ = make(latency=1e-6, bandwidth=1e9, eager_threshold=10**9)
    t1 = net.send(0, 1, 10**6)  # 1 ms wire
    t2 = net.send(0, 2, 10**6)  # queued behind the first on node 0's TX
    assert t2 >= t1 + 0.9e-3


def test_different_senders_do_not_serialize():
    net, _ = make(latency=1e-6, bandwidth=1e9, eager_threshold=10**9)
    t1 = net.send(0, 2, 10**6)
    t2 = net.send(1, 3, 10**6)
    assert t2 == pytest.approx(t1)


def test_fifo_per_sender():
    net, _ = make()
    times = [net.send(0, 1, 5000) for _ in range(20)]
    assert times == sorted(times)


def test_rank_out_of_range():
    net, _ = make(nnodes=2)
    with pytest.raises(ValueError):
        net.send(0, 5, 10)
    with pytest.raises(ValueError):
        net.send(-1, 0, 10)


def test_negative_bytes():
    net, _ = make()
    with pytest.raises(ValueError):
        net.send(0, 1, -5)


def test_rma_get_round_trip_cost():
    net, _ = make(latency=1e-6, bandwidth=1e9, eager_threshold=10**9)
    t = net.rma_get(0, 1, 10**6)
    # request (latency) + payload (wire + latency)
    assert t >= 2e-6 + 1e-3


def test_bcast_time_log_scaling():
    net, _ = make(nnodes=64)
    t8 = net.bcast_time(8, 1000)
    t64 = net.bcast_time(64, 1000)
    assert t64 == pytest.approx(2 * t8)
    assert net.bcast_time(1, 1000) == 0.0


def test_barrier_time():
    net, _ = make(nnodes=16)
    assert net.barrier_time(1) == 0.0
    assert net.barrier_time(16) > 0.0


def test_allreduce_twice_bcast():
    net, _ = make(nnodes=8)
    assert net.allreduce_time(8, 500) == pytest.approx(2 * net.bcast_time(8, 500))


def test_backbone_only_for_bulk():
    # Small messages must not queue on the backbone even when it is busy.
    net, _ = make(
        nnodes=4, latency=1e-6, bandwidth=1e9,
        eager_threshold=1000, bisection_per_node=1e6,
    )
    # big transfer from 0 occupies the backbone for a long time
    t_big = net.send(0, 1, 10**6)
    t_small = net.send(2, 3, 100)
    assert t_small < 1e-4  # unaffected by the backbone queue


def test_backbone_serializes_bulk():
    net, _ = make(
        nnodes=4, latency=1e-6, bandwidth=1e12,
        eager_threshold=1000, bisection_per_node=1e6,
    )
    t1 = net.send(0, 1, 10**6)
    t2 = net.send(2, 3, 10**6)  # different NICs, shared backbone
    assert t2 > t1


def test_message_and_byte_counters():
    net, _ = make()
    net.send(0, 1, 100)
    net.send(1, 2, 200)
    net.send(2, 2, 300)  # local: counted as message but not bytes
    assert net.messages_sent == 3
    assert net.bytes_sent == 300


def test_invalid_nnodes():
    eng = Engine()
    with pytest.raises(ValueError):
        NetworkModel(NetworkSpec(), 0, eng)
