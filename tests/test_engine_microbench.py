"""Micro-benchmark of the event-engine hot loop.

Measures events/second on a synthetic event storm for the sequential and
sharded engines and checks the optimizations stay effective:

- the batched ``schedule_batch`` path must not be slower than N single
  pushes (it exists to amortize ``heappush``);
- cancelled events must be skipped cheaply;
- seq and sharded engines must execute the storm in the identical order.

Host-time assertions are inherently flaky on loaded or single-core CI
hosts, so the *strict* throughput gates only arm when REPRO_BENCH_STRICT
is set; the order and smoke assertions always run.
"""

import os
import time

import pytest

from repro.sim.engine import Engine
from repro.sim.sharded import ShardedEngine

STRICT = bool(os.environ.get("REPRO_BENCH_STRICT"))

N_EVENTS = 20_000


def _storm(eng, hits, n=N_EVENTS):
    """A deterministic storm: staggered times, mixed ranks, some nesting."""
    for i in range(n):
        eng.schedule((i * 13) % 97 * 1e-6, hits.append, i, rank=i % 8)


def _time_drain(eng):
    t0 = time.perf_counter()
    eng.run()
    return time.perf_counter() - t0


@pytest.mark.parametrize("kind", ["seq", "sharded"])
def test_storm_throughput_smoke(kind):
    eng = Engine() if kind == "seq" else ShardedEngine(nshards=8,
                                                       lookahead=1e-5)
    hits = []
    _storm(eng, hits)
    host = _time_drain(eng)
    assert len(hits) == N_EVENTS
    assert eng.events_processed == N_EVENTS
    rate = N_EVENTS / host
    # Even a slow CI box clears 50k events/s; the point is catching an
    # accidental O(n log n) -> O(n^2) or per-event allocation regression.
    if STRICT:
        assert rate > 200_000, f"{kind} engine at {rate:,.0f} ev/s"
    else:
        assert rate > 20_000, f"{kind} engine at {rate:,.0f} ev/s"


def test_seq_and_sharded_order_identical_on_storm():
    results = []
    for eng in (Engine(), ShardedEngine(nshards=8, lookahead=1e-5)):
        hits = []
        _storm(eng, hits, n=5_000)
        eng.run()
        results.append(hits)
    assert results[0] == results[1]


def test_batched_schedule_not_slower_than_single():
    """One heap push per burst must beat (or tie) a push per event."""
    n_bursts, burst = 400, 50

    def single():
        eng = Engine()
        for b in range(n_bursts):
            for i in range(burst):
                eng.schedule(float(b), (lambda: None))
        return eng

    def batched():
        eng = Engine()
        for b in range(n_bursts):
            eng.schedule_batch(float(b),
                               [((lambda: None), ()) for _ in range(burst)])
        return eng

    # Warm up, then time schedule+drain for both shapes.
    for fn in (single, batched):
        fn().run()
    t0 = time.perf_counter()
    single().run()
    t_single = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched().run()
    t_batched = time.perf_counter() - t0
    if STRICT:
        assert t_batched <= t_single * 1.10, (
            f"batched {t_batched:.4f}s vs single {t_single:.4f}s"
        )
    else:
        # Loose sanity bound for noisy hosts.
        assert t_batched <= t_single * 2.0, (
            f"batched {t_batched:.4f}s vs single {t_single:.4f}s"
        )


def test_cancelled_events_skipped_cheaply():
    eng = Engine()
    events = [eng.schedule(1.0, (lambda: None)) for _ in range(10_000)]
    for ev in events:
        ev.cancel()
    keep = []
    eng.schedule(2.0, keep.append, "ran")
    host = _time_drain(eng)
    assert keep == ["ran"]
    assert eng.events_processed == 1
    if STRICT:
        assert host < 0.1
