"""Equivalence suite: the sharded (and mp) engines must reproduce the
sequential engine bit-for-bit on every application.

The sharded executor's determinism argument (exact global ``(time, seq)``
replay inside each conservative window, see :mod:`repro.sim.sharded`) is
asserted here at full strength: run stats, per-template task counts,
tracer task/message records, bench measurements and sanitizer findings
must be *identical* -- not approximately equal -- across engines, for all
four paper applications at several rank counts.
"""

import warnings

import pytest

from repro import core as ttg
from repro.runtime import ParsecBackend
from repro.sim import Cluster, HAWK, Tracer
from repro.sim.sharded import ShardedEngine


def _run(app, kind, nranks, trace=False):
    """One simulated run; returns everything comparable about it."""
    tracer = Tracer() if trace else None
    cluster = Cluster.with_engine(HAWK.with_workers(4), nranks, engine=kind)
    backend = ParsecBackend(cluster, tracer=tracer)
    if app == "potrf":
        from repro.apps.cholesky import cholesky_ttg
        from repro.bench.history import SeededBlockCyclic
        from repro.linalg import TiledMatrix

        a = TiledMatrix(768, 128, SeededBlockCyclic.for_ranks(nranks, 0),
                        synthetic=True)
        res = cholesky_ttg(a, backend)
    elif app == "fw":
        from repro.apps.floydwarshall import floyd_warshall_ttg
        from repro.bench.history import SeededBlockCyclic
        from repro.linalg import TiledMatrix

        w = TiledMatrix(512, 128, SeededBlockCyclic.for_ranks(nranks, 0),
                        synthetic=True)
        res = floyd_warshall_ttg(w, backend)
    elif app == "bspmm":
        from repro.apps.bspmm import bspmm_ttg
        from repro.linalg import yukawa_blocksparse

        a = yukawa_blocksparse(15, target_tile=24, seed=0)
        res = bspmm_ttg(a, a, backend)
    elif app == "mra":
        from repro.apps.mra import mra_ttg, random_gaussians

        res = mra_ttg(random_gaussians(4, seed=0), backend, k=4,
                      thresh=1.0e-4, max_level=5)
    else:  # pragma: no cover
        raise ValueError(app)
    return {
        "stats": backend.stats.as_dict(),
        "makespan": res.makespan,
        "task_counts": dict(res.task_counts),
        "tasks": None if tracer is None else tracer.tasks,
        "messages": None if tracer is None else tracer.messages,
    }


@pytest.mark.parametrize("nranks", [4, 16, 64])
@pytest.mark.parametrize("app", ["potrf", "fw", "bspmm", "mra"])
def test_sharded_matches_sequential(app, nranks):
    seq = _run(app, "seq", nranks)
    sharded = _run(app, "sharded", nranks)
    assert sharded["makespan"] == seq["makespan"]
    assert sharded["stats"] == seq["stats"]
    assert sharded["task_counts"] == seq["task_counts"]


@pytest.mark.parametrize("app", ["potrf", "mra"])
def test_trace_records_identical(app):
    seq = _run(app, "seq", 4, trace=True)
    sharded = _run(app, "sharded", 4, trace=True)
    assert sharded["tasks"] == seq["tasks"]
    assert sharded["messages"] == seq["messages"]


def test_bench_measurements_identical():
    from repro.bench.history import measure_fw, measure_potrf

    for fn in (measure_potrf, measure_fw):
        a = fn(0, engine="seq").as_dict()
        b = fn(0, engine="sharded").as_dict()
        for skip in ("host_seconds", "engine", "git_sha"):
            a.pop(skip), b.pop(skip)
        assert a == b


def test_mp_cells_identical_to_inline():
    from repro.bench.history import measure_cell
    from repro.bench.parallel import run_cells

    cells = [{"app": "fw", "seed": s, "engine": "mp"} for s in (0, 1)]
    parallel = run_cells(cells, processes=2)
    inline = [measure_cell(c) for c in cells]
    for p, i in zip(parallel, inline):
        dp, di = p.as_dict(), i.as_dict()
        for skip in ("host_seconds", "git_sha"):
            dp.pop(skip), di.pop(skip)
        assert dp == di


def test_run_ledgers_agree_on_final_progress(tmp_path):
    """Seq and sharded ledgers of the same run replay to the same totals;
    only the sharded one additionally carries per-window health records."""
    from repro.bench.history import measure_potrf
    from repro.telemetry.ledger import read_ledger, replay_path

    ldir = str(tmp_path)
    snaps, records = {}, {}
    for kind in ("seq", "sharded"):
        measure_potrf(0, engine=kind, ledger_dir=ldir)
        path = f"{ldir}/potrf-seed0-{kind}.ledger.jsonl"
        snaps[kind] = replay_path(path)
        records[kind] = read_ledger(path)
    seq, sharded = snaps["seq"], snaps["sharded"]
    assert seq.complete and sharded.complete
    assert sharded.tasks_done == seq.tasks_done > 0
    assert sharded.tasks_total == seq.tasks_total
    assert sharded.by_template == seq.by_template
    assert sharded.bytes_by_protocol == seq.bytes_by_protocol
    assert sharded.sim == seq.sim  # identical virtual makespan
    assert not any(r["type"] == "window" for r in records["seq"])
    assert sharded.windows > 0
    assert sum(sharded.events_by_shard) > 0


# -------------------------------------------------- sanitizer parity


def _faulty_run(kind):
    """A duplicate-send fault observed under the given engine kind."""

    def _noop(key, *args):
        pass

    e = ttg.Edge("ab", key_type=int, value_type=int)
    sink = ttg.make_tt(_noop, [e], [], name="SINK", keymap=lambda k: 0)

    def gen_body(key, outs):
        outs.send(0, 5, 1)
        outs.send(0, 5, 2)  # duplicate delivery: SAN001

    gen = ttg.make_tt(gen_body, [], [e], name="GEN", keymap=lambda k: 0)
    backend = ParsecBackend(Cluster.with_engine(HAWK, 2, engine=kind))
    ex = ttg.TaskGraph([gen, sink]).executable(backend, sanitize=True)
    ex.invoke(gen, 0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        ex.fence()
    # Canonical form: on the sharded engine one fault can be observed
    # once per rank shard, so compare deduplicated, stably-ordered lists.
    from repro.analysis.sanitizer import canonical_findings

    return [(f.rule.id, f.location, f.message)
            for f in canonical_findings(ex.sanitizer.findings)]


def test_sanitizer_findings_identical():
    seq = _faulty_run("seq")
    sharded = _faulty_run("sharded")
    assert seq  # the fault was detected at all
    assert sharded == seq


def test_app_sanitizer_findings_identical_across_engines():
    from repro.apps.cholesky import build_cholesky_graph
    from repro.bench.history import SeededBlockCyclic
    from repro.linalg import TiledMatrix

    def findings(kind):
        cluster = Cluster.with_engine(HAWK.with_workers(4), 4, engine=kind)
        backend = ParsecBackend(cluster)
        a = TiledMatrix(512, 128, SeededBlockCyclic.for_ranks(4, 0),
                        synthetic=True)
        res = TiledMatrix(512, 128, a.dist, synthetic=True)
        graph, initiator = build_cholesky_graph(a, res)
        ex = graph.executable(backend, sanitize=True)
        for rank in range(4):
            ex.invoke(initiator, rank)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            ex.fence()
        from repro.analysis.sanitizer import canonical_findings

        return [(f.rule.id, f.location, f.message)
                for f in canonical_findings(ex.sanitizer.findings)]

    assert findings("sharded") == findings("seq")


def test_sharded_engine_actually_sharded():
    # Guard against a silent fallback: the cluster must have bound one
    # shard per rank and events must really flow through the shards.
    cluster = Cluster.with_engine(HAWK.with_workers(4), 16, engine="sharded")
    assert isinstance(cluster.engine, ShardedEngine)
    assert cluster.engine.nshards == 16
    _run("fw", "sharded", 16)  # uses an equivalent fresh cluster
    eng = Cluster.with_engine(HAWK.with_workers(4), 4, engine="sharded").engine
    assert eng.lookahead == HAWK.network.latency
