"""Fault-seeding tests for the runtime sanitizer (TTG-San, SAN0xx checks).

Each test arms the sanitizer (``sanitize=True`` to collect findings and
warn, ``strict=True`` to raise) and deliberately commits one runtime
fault, then asserts the exact diagnostic.
"""

import warnings

import numpy as np
import pytest

from repro import core as ttg
from repro.analysis import SANITIZER_RULE_IDS, get_rule
from repro.core import Executable, SanitizerError
from repro.runtime import MadnessBackend, ParsecBackend
from repro.sim import Cluster, HAWK


def _backend(n=2):
    return ParsecBackend(Cluster(HAWK, n))


def _noop(key, *args):
    pass


def san_findings(ex, rule_id):
    return [f for f in ex.sanitizer.findings if f.rule.id == rule_id]


def test_sanitizer_catalog():
    assert len(SANITIZER_RULE_IDS) >= 5
    for rid in SANITIZER_RULE_IDS:
        assert get_rule(rid).severity == "error"


# ----------------------------------------------------- SAN001: double delivery


def _one_sink_graph():
    e = ttg.Edge("in", key_type=int, value_type=int)
    sink = ttg.make_tt(_noop, [e], [], name="SINK", keymap=lambda k: 0)
    return ttg.TaskGraph([sink], name="g"), sink


def test_san001_duplicate_injection():
    g, sink = _one_sink_graph()
    ex = g.executable(_backend(), sanitize=True)
    ex.inject(sink, 0, 7, 1)
    with pytest.warns(RuntimeWarning, match="TTG-San: SAN001"):
        ex.inject(sink, 0, 7, 2)
    fs = san_findings(ex, "SAN001")
    assert len(fs) == 1
    assert fs[0].location == "SINK[7].in0"
    assert "first sent by <inject>" in fs[0].message
    assert "sent again by <inject>" in fs[0].message


def test_san001_duplicate_send_names_the_sending_task():
    e = ttg.Edge("ab", key_type=int, value_type=int)
    sink = ttg.make_tt(_noop, [e], [], name="SINK", keymap=lambda k: 0)

    def gen_body(key, outs):
        outs.send(0, 5, 1)
        outs.send(0, 5, 2)  # same consumer key: duplicate

    gen = ttg.make_tt(gen_body, [], [e], name="GEN", keymap=lambda k: 0)
    ex = ttg.TaskGraph([gen, sink]).executable(_backend(), sanitize=True)
    ex.invoke(gen, 0)
    with warnings.catch_warnings():
        # Ignore the follow-on SAN002 the second delivery also triggers.
        warnings.simplefilter("ignore")
        ex.fence()
    fs = san_findings(ex, "SAN001")
    assert len(fs) == 1
    assert "first sent by GEN[0]" in fs[0].message


# ------------------------------------------------------ SAN002: task-ID reuse


def test_san002_invoke_reuses_task_id():
    g, sink = _one_sink_graph()
    ex = g.executable(_backend(), sanitize=True)
    ex.invoke(sink, 3, [1])
    with pytest.warns(RuntimeWarning, match="TTG-San: SAN002"):
        ex.invoke(sink, 3, [2])
    fs = san_findings(ex, "SAN002")
    assert fs[0].location == "SINK[3]"
    assert "already fired" in fs[0].message


def test_san002_delivery_after_fire():
    g, sink = _one_sink_graph()
    ex = g.executable(_backend(), sanitize=True)
    ex.inject(sink, 0, 3, 1)
    ex.fence()
    ex.inject(sink, 0, 3, 2)
    with pytest.warns(RuntimeWarning, match="TTG-San: SAN002"):
        ex.fence()
    assert any("task-ID reuse" in f.message for f in san_findings(ex, "SAN002"))


def test_san002_strict_raises():
    g, sink = _one_sink_graph()
    ex = g.executable(_backend(), strict=True)
    ex.invoke(sink, 3, [1])
    with pytest.raises(SanitizerError) as exc:
        ex.invoke(sink, 3, [2])
    assert exc.value.rule == "SAN002"
    assert "SAN002" in str(exc.value)


# ------------------------------------------------ SAN003: write after cref share


def test_san003_mutating_cref_shared_data():
    e = ttg.Edge("ab", key_type=int, value_type=np.ndarray)
    sink = ttg.make_tt(_noop, [e], [], name="SINK", keymap=lambda k: 0)
    arr = np.zeros(8)

    def gen_body(key, outs):
        outs.send(0, key, arr, mode="cref")
        arr[0] = 99.0  # mutate after sharing: the classic cref race

    gen = ttg.make_tt(gen_body, [], [e], name="GEN", keymap=lambda k: 0)
    # ParsecBackend: runtime-owned data, cref shares without a copy.
    ex = ttg.TaskGraph([gen, sink]).executable(_backend(), sanitize=True)
    ex.invoke(gen, 0)
    with pytest.warns(RuntimeWarning, match="TTG-San: SAN003"):
        ex.fence()
    fs = san_findings(ex, "SAN003")
    assert len(fs) == 1
    assert "shared via cref by GEN[0]" in fs[0].message
    assert "mutated" in fs[0].message


def test_san003_clean_on_copying_backend():
    # MadnessBackend copies on cref, so the same program is race-free.
    e = ttg.Edge("ab", key_type=int, value_type=np.ndarray)
    sink = ttg.make_tt(_noop, [e], [], name="SINK", keymap=lambda k: 0)
    arr = np.zeros(8)

    def gen_body(key, outs):
        outs.send(0, key, arr, mode="cref")
        arr[0] = 99.0

    gen = ttg.make_tt(gen_body, [], [e], name="GEN", keymap=lambda k: 0)
    backend = MadnessBackend(Cluster(HAWK, 2))
    ex = ttg.TaskGraph([gen, sink]).executable(backend, sanitize=True)
    ex.invoke(gen, 0)
    ex.fence()
    assert san_findings(ex, "SAN003") == []


# --------------------------------------------- SAN004: stream control after fire


def test_san004_stream_control_after_fire():
    e = ttg.Edge("s", key_type=int, value_type=int)
    red = ttg.make_tt(_noop, [e], [], name="RED", keymap=lambda k: 0)
    red.set_input_reducer(0, lambda a, b: a + b)  # dynamic size
    g = ttg.TaskGraph([red])
    ex = g.executable(_backend(), sanitize=True)
    ex.inject(red, 0, 1, 10)
    ex.set_argstream_size(red, 0, 1, 1)
    ex.fence()  # stream complete: RED[1] fires
    with pytest.warns(RuntimeWarning, match="TTG-San: SAN004"):
        ex.set_argstream_size(red, 0, 1, 1)
    fs = san_findings(ex, "SAN004")
    assert fs[0].location == "RED[1].in0"
    assert "after the task instance already fired" in fs[0].message


# ------------------------------------------------------ SAN005: data-copy leak
# ---------------------------------------------------- SAN006: stranded messages


def _half_fed_graph(value):
    e1 = ttg.Edge("l", key_type=int, value_type=object)
    e2 = ttg.Edge("r", key_type=int, value_type=object)
    join = ttg.make_tt(_noop, [e1, e2], [], name="JOIN", keymap=lambda k: 0)
    g = ttg.TaskGraph([join], name="g")
    ex = g.executable(_backend(), sanitize=True)
    ex.inject(join, 0, 0, value)  # in1 never arrives
    return ex


def test_san006_stranded_instance_reports_got_and_missing():
    ex = _half_fed_graph(7)  # int payload: not tracked, no SAN005 noise
    with pytest.warns(RuntimeWarning, match="TTG-San: SAN006"):
        ex.fence()
    fs = san_findings(ex, "SAN006")
    assert len(fs) == 1
    assert fs[0].location == "JOIN[0]"
    assert "received [in0=1/1]" in fs[0].message
    assert "waiting on [in1=0/1]" in fs[0].message


def test_san005_leaked_data_copy():
    ex = _half_fed_graph(np.ones(4))  # array payload: tracked, leaks
    with pytest.warns(RuntimeWarning):
        ex.fence()
    fs = san_findings(ex, "SAN005")
    assert len(fs) == 1
    assert "never consumed" in fs[0].message
    assert "ndarray delivered by <inject>" in fs[0].message
    # ... and the stranded instance is reported alongside.
    assert len(san_findings(ex, "SAN006")) == 1


def test_san005_clean_run_has_no_leaks():
    e = ttg.Edge("ab", key_type=int, value_type=np.ndarray)
    got = []

    def sink_body(key, v, outs):
        got.append(v)

    sink = ttg.make_tt(sink_body, [e], [], name="SINK", keymap=lambda k: 0)

    def gen_body(key, outs):
        outs.send(0, key, np.full(4, key), mode="move")

    gen = ttg.make_tt(gen_body, [], [e], name="GEN", keymap=lambda k: k % 2)
    ex = ttg.TaskGraph([gen, sink]).executable(_backend(), sanitize=True)
    for k in range(4):
        ex.invoke(gen, k)
    ex.fence()
    assert ex.sanitizer.findings == []
    assert len(got) == 4


# ------------------------------------------------------- SAN007: use after move


def test_san007_send_after_move():
    e = ttg.Edge("ab", key_type=int, value_type=np.ndarray)
    sink = ttg.make_tt(_noop, [e], [], name="SINK", keymap=lambda k: 0)
    arr = np.zeros(4)

    def gen_body(key, outs):
        outs.send(0, 0, arr, mode="move")
        outs.send(0, 1, arr, mode="move")  # relinquished it already

    gen = ttg.make_tt(gen_body, [], [e], name="GEN", keymap=lambda k: 0)
    ex = ttg.TaskGraph([gen, sink]).executable(_backend(), sanitize=True)
    ex.invoke(gen, 0)
    with pytest.warns(RuntimeWarning, match="TTG-San: SAN007"):
        ex.fence()
    fs = san_findings(ex, "SAN007")
    assert len(fs) == 1
    assert "moved by GEN[0]" in fs[0].message
    assert "sent again by GEN[0]" in fs[0].message


# --------------------------------------------------------------- housekeeping


def test_sanitizer_not_armed_by_default():
    g, sink = _one_sink_graph()
    ex = g.executable(_backend())
    assert ex.sanitizer is None
    ex.invoke(sink, 3, [1])
    ex.invoke(sink, 3, [2])  # no sanitizer: silently accepted
    ex.fence()


def test_clean_quickstart_style_run_is_silent():
    # The quickstart graph (generate -> fan-out broadcast -> streaming
    # reduce) run end to end under strict sanitizing: no findings.
    results = {}
    numbers = ttg.Edge("numbers", key_type=int, value_type=int)
    squares = ttg.Edge("squares", key_type=int, value_type=int)

    def generate(key, outs):
        outs.send(0, key, key * key)

    def spread(key, square, outs):
        outs.broadcast(0, [0, 1], square)

    def collect(key, total, outs):
        results[key] = total

    gen = ttg.make_tt(generate, [], [numbers], name="GEN", keymap=lambda k: k % 2)
    fan = ttg.make_tt(spread, [numbers], [squares], name="FAN",
                      keymap=lambda k: (k + 1) % 2)
    red = ttg.make_tt(collect, [squares], [], name="REDUCE", keymap=lambda k: k % 2)
    red.set_input_reducer(0, lambda a, b: a + b, size=8)
    ex = Executable.make(ttg.TaskGraph([gen, fan, red]), _backend(), strict=True)
    for k in range(8):
        ex.invoke(gen, k)
    ex.fence()
    assert results == {k: sum(i * i for i in range(8)) for k in (0, 1)}
    assert ex.sanitizer.findings == []
