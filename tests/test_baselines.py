"""Tests for the comparator models."""

import pytest

from repro.apps.mra import random_gaussians
from repro.baselines import (
    BulkSyncExecutor,
    Round,
    chameleon_cholesky,
    dbcsr_multiply,
    dplasma_cholesky,
    forkjoin_fw,
    madness_mra,
    scalapack_cholesky,
    slate_cholesky,
)
from repro.linalg import BlockCyclicDistribution, TiledMatrix, yukawa_blocksparse
from repro.sim.cluster import Cluster, HAWK


def cluster(nodes=4, workers=16):
    return Cluster(HAWK.with_workers(workers), nodes)


# ----------------------------------------------------------------- bulksync


def test_round_duration_brent_bound():
    ex = BulkSyncExecutor(cluster(1, workers=4))
    rate = HAWK.node.flops_per_worker
    # work-bound: 8 units of work over 4 workers
    t = ex.run([Round(work={0: 8 * rate})])
    assert t == pytest.approx(2.0, rel=1e-6)
    # cp-bound
    ex2 = BulkSyncExecutor(cluster(1, workers=4))
    t2 = ex2.run([Round(work={0: 4 * rate}, critical_path={0: 3 * rate})])
    assert t2 == pytest.approx(3.0, rel=1e-6)


def test_round_max_over_ranks_plus_comm_barrier():
    cl = cluster(4)
    ex = BulkSyncExecutor(cl)
    rate = cl.node.flops_per_worker * cl.node.workers
    t = ex.run([Round(work={0: rate, 1: 2 * rate}, comm=0.5)])
    barrier = cl.network.barrier_time(4)
    assert t == pytest.approx(2.0 + 0.5 + barrier, rel=1e-6)
    bd = ex.breakdown()
    assert bd["comm"] == pytest.approx(0.5)


def test_empty_round():
    ex = BulkSyncExecutor(cluster(2))
    assert ex.run([Round()]) == pytest.approx(
        cluster(2).network.barrier_time(2)
    )


# ----------------------------------------------------------------- cholesky


def test_forkjoin_cholesky_results_sane():
    cl = cluster(4)
    sc = scalapack_cholesky(cl, 8192)
    sl = slate_cholesky(cl, 8192)
    assert 0 < sc.gflops < cl.peak_gflops
    assert 0 < sl.gflops < cl.peak_gflops
    assert sc.makespan > 0 and sl.makespan > 0


def test_taskbased_beats_forkjoin_at_scale():
    nodes, n = 8, 11264
    cl = cluster(nodes)
    a = TiledMatrix(n, 256, BlockCyclicDistribution.for_ranks(nodes), synthetic=True)
    dp = dplasma_cholesky(cl, a)
    sc = scalapack_cholesky(cl, n)
    assert dp.gflops > sc.gflops  # the paper's two groups


def test_chameleon_close_to_dplasma():
    nodes, n = 4, 8192
    a1 = TiledMatrix(n, 256, BlockCyclicDistribution.for_ranks(nodes), synthetic=True)
    a2 = TiledMatrix(n, 256, BlockCyclicDistribution.for_ranks(nodes), synthetic=True)
    dp = dplasma_cholesky(cluster(nodes), a1)
    ch = chameleon_cholesky(cluster(nodes), a2)
    assert ch.gflops <= dp.gflops * 1.05
    assert ch.gflops >= dp.gflops * 0.5


def test_scalapack_weak_scaling_grows():
    g = [scalapack_cholesky(cluster(p), 4096 * int(p**0.5)).gflops for p in (1, 4, 16)]
    assert g[0] < g[1] < g[2]


# ----------------------------------------------------------------------- fw


def test_forkjoin_fw_sane_and_square_grids():
    r4 = forkjoin_fw(cluster(4), 2048, 64)
    assert 0 < r4.gflops
    # non-square counts waste ranks: 8 nodes no faster than 4-node grid
    r8 = forkjoin_fw(cluster(8), 2048, 64)
    assert r8.gflops <= r4.gflops * 1.3


def test_forkjoin_fw_breakdown():
    r = forkjoin_fw(cluster(4), 2048, 64)
    assert set(r.breakdown) == {"compute", "comm", "barrier"}
    assert r.breakdown["compute"] > 0


# -------------------------------------------------------------------- dbcsr


def test_dbcsr_picks_no_replication_small_scale():
    m = yukawa_blocksparse(60, target_tile=48, seed=1, synthetic=True)
    r = dbcsr_multiply(cluster(4), m, m)
    assert r.replication == 1
    assert r.gflops > 0


def test_dbcsr_replicates_at_scale():
    m = yukawa_blocksparse(120, target_tile=48, decay_length=2.5, seed=2,
                           synthetic=True)
    small = dbcsr_multiply(cluster(8), m, m)
    big = dbcsr_multiply(cluster(128), m, m)
    assert big.replication >= small.replication
    assert big.replication > 1  # 2.5D kicks in where comm dominates


def test_dbcsr_scales():
    m = yukawa_blocksparse(120, target_tile=48, decay_length=2.5, seed=3,
                           synthetic=True)
    g = [dbcsr_multiply(cluster(p), m, m).gflops for p in (4, 16, 64)]
    assert g[0] < g[1] < g[2]


# ---------------------------------------------------------------------- mra


def test_madness_mra_model():
    funcs = random_gaussians(4, d=2, exponent=1000.0, seed=1)
    r = madness_mra(cluster(4), funcs, k=4, thresh=1e-4, max_level=8)
    assert r.makespan > 0
    assert r.total_nodes > 4
    assert set(r.breakdown) == {"compute", "comm", "barrier"}


def test_madness_mra_scales_then_saturates():
    funcs = random_gaussians(8, d=2, exponent=2000.0, seed=2)
    # Charge work/bytes as the paper's order-10 3-D tensors (as the figure
    # benchmarks do) so compute and comm are in a realistic ratio.
    times = [
        madness_mra(cluster(p), funcs, k=4, thresh=1e-4, max_level=8,
                    inflate=16.0, flops_scale=40.0).makespan
        for p in (1, 4, 16)
    ]
    assert times[1] < times[0]  # some scaling
    # efficiency degrades (barriers + serial AM thread)
    speedup_4 = times[0] / times[1]
    speedup_16 = times[0] / times[2]
    assert speedup_16 < 16 * 0.8
