"""Deterministic what-if profiler: exact counterfactual replay.

The load-bearing property is *exactness*: the simulator is bit-for-bit
deterministic, so a cost-override probe answers Coz's causal question
with zero tolerance -- an injected ``1/f`` slowdown replayed under an
``f`` speedup reproduces the unperturbed baseline makespan *exactly*
(``==`` on floats, no approx).
"""

import pytest

from repro.bench.__main__ import main as bench_main
from repro.bench.history import BenchHistory, measure_potrf
from repro.sim.cluster import CostOverrides
from repro.telemetry import whatif
from repro.telemetry.whatif import (
    explain,
    format_sensitivity,
    parse_factor,
    replay_record,
    sensitivity,
)

_SMALL = dict(nodes=2, n=512, b=128, workers=2)


def _clean(seed=0):
    return measure_potrf(seed, **_SMALL)


def _slowed(seed=0, template="TRSM", factor=2.0):
    return measure_potrf(seed, overrides={"speedups": {template: 1.0 / factor}},
                         **_SMALL)


# ------------------------------------------------------------ CostOverrides


def test_parse_factor():
    assert parse_factor("GEMM=2") == ("GEMM", 2.0)
    assert parse_factor("TRSM=0.5") == ("TRSM", 0.5)
    for bad in ("GEMM", "=2", "GEMM=0", "GEMM=-1"):
        with pytest.raises(ValueError):
            parse_factor(bad)


def test_overrides_validate_and_normalize():
    with pytest.raises(ValueError):
        CostOverrides(speedups={"T": 0.0})
    with pytest.raises(ValueError):
        CostOverrides(latency_scale=-1.0)
    assert CostOverrides().is_null
    assert CostOverrides.coerce(None) is None
    assert CostOverrides.coerce({"speedups": {"T": 1.0}}) is None  # neutral
    ov = CostOverrides.coerce({"speedups": {"T": 0.5}})
    assert ov is not None and ov.speedups["T"] == 0.5


def test_overrides_compose_is_exactly_invertible():
    slow = CostOverrides(speedups={"T": 0.5}, latency_scale=2.0)
    fast = CostOverrides(speedups={"T": 2.0}, latency_scale=0.5)
    composed = slow.compose(fast)
    # 0.5 * 2.0 == 1.0 exactly (powers of two are float-exact), so the
    # composition is the null override and coerces away entirely.
    assert composed.is_null
    assert CostOverrides.coerce(composed) is None


def test_overrides_dict_roundtrip_omits_neutral_fields():
    ov = CostOverrides(speedups={"B": 0.5, "A": 2.0})
    d = ov.as_dict()
    assert d == {"speedups": {"A": 2.0, "B": 0.5}}
    assert CostOverrides.from_dict(d) == ov


# ----------------------------------------------------------- record replay


def test_injected_slowdown_slows_run_and_is_recorded():
    base = _clean()
    cand = _slowed()
    assert cand.makespan > base.makespan
    assert cand.cost_overrides == {"speedups": {"TRSM": 0.5}}
    assert base.cost_overrides == {}
    # Deliberate: overrides are excluded from the config key, so the
    # regressed run gates against the clean baseline window.
    assert cand.config_key == base.config_key


def test_pure_replay_reproduces_the_record_bit_for_bit():
    base = _clean()
    rep = replay_record(base)
    assert rep.makespan == base.makespan
    assert rep.gflops == base.gflops
    assert rep.tasks_total == base.tasks_total


def test_inverse_probe_recovers_baseline_exactly():
    # The acceptance property: whatif --speedup TRSM=2 on the regressed
    # record predicts the baseline makespan with ZERO tolerance.
    base = _clean()
    cand = _slowed()
    rep = replay_record(cand, speedups={"TRSM": 2.0})
    assert rep.makespan == base.makespan
    assert rep.cost_overrides == {}   # composed overrides are null


def test_replay_can_change_rank_count():
    base = _clean()
    rep = replay_record(base, nodes=4)
    assert rep.config["nodes"] == 4
    assert rep.makespan != base.makespan


# ----------------------------------------------------------------- explain


def test_explain_ranks_injected_template_first_with_majority_share():
    base = _clean()
    cand = _slowed(template="TRSM", factor=2.0)
    exp = explain(base, cand, factor=2.0)
    assert exp.delta > 0
    top = exp.top()
    assert top is not None
    assert top.template == "TRSM"
    assert top.share >= 0.5
    assert top.exact_baseline is True
    text = exp.format()
    assert "root cause" in text
    assert "TRSM" in text and "recovers the baseline EXACTLY" in text
    assert "accounts for" in text
    d = exp.as_dict()
    assert d["schema"] == "repro.telemetry/whatif-v1"
    assert d["attributions"][0]["template"] == "TRSM"


def test_sensitivity_sweeps_templates_network_and_ranks():
    base = _clean()
    rows = sensitivity(base, factor=2.0, templates=("GEMM", "TRSM"),
                       node_counts=(4,))
    knobs = {s.knob for s in rows}
    assert "speedup GEMM=2" in knobs and "speedup TRSM=2" in knobs
    assert "latency /2" in knobs and "bandwidth x2" in knobs
    assert "nodes 4" in knobs
    # Sorted best-first and every template speedup helps (or is neutral).
    assert [s.makespan for s in rows] == sorted(s.makespan for s in rows)
    assert all(s.makespan <= base.makespan for s in rows if s.kind == "template")
    assert "knob" in format_sensitivity(rows)


def test_whatif_estimate_is_first_order_amdahl():
    from repro.sim.profile import whatif_estimate

    assert whatif_estimate(1.0, 0.5, 1.0, 1.0) == 1.0     # no speedup
    assert whatif_estimate(1.0, 0.5, 1.0, 2.0) == 0.75    # half the work, 2x
    assert whatif_estimate(1.0, 0.0, 1.0, 8.0) == 1.0     # template absent
    assert whatif_estimate(0.0, 0.5, 1.0, 2.0) == 0.0     # degenerate guard


# --------------------------------------------------------------------- CLI


def _cli(*argv):
    import io

    from repro.telemetry.cli import main

    out = io.StringIO()
    code = main(list(argv), stream=out)
    return code, out.getvalue()


def test_cli_whatif_exact_inverse(tmp_path):
    base = _clean()
    cand = _slowed()
    h = BenchHistory("potrf", [base, cand])
    path = str(h.save(directory=str(tmp_path)))
    code, text = _cli("whatif", path, "--select", "last",
                      "--speedup", "TRSM=2")
    assert code == 0
    assert f"{base.makespan * 1e3:.4f} ms" in text.replace("-> ", "")
    import json as _json
    code, text = _cli("whatif", path, "--select", "last",
                      "--speedup", "TRSM=2", "--json")
    assert code == 0
    payload = _json.loads(text)
    assert payload["schema"] == "repro.telemetry/whatif-v1"
    assert payload["makespan"] == base.makespan   # exact, not approx


def test_cli_whatif_sweep_json(tmp_path):
    import json as _json

    h = BenchHistory("potrf", [_clean()])
    path = str(h.save(directory=str(tmp_path)))
    code, text = _cli("whatif", path, "--sweep", "--json")
    assert code == 0
    payload = _json.loads(text)
    assert payload["schema"] == "repro.telemetry/whatif-sweep-v1"
    knobs = {r["knob"] for r in payload["rows"]}
    assert any(k.startswith("speedup ") for k in knobs)


def test_cli_whatif_rejects_non_history(tmp_path):
    p = tmp_path / "counters.json"
    p.write_text('{"schema": "repro.telemetry/counters-v1", "counters": {}}')
    code, text = _cli("whatif", str(p))
    assert code == 1
    assert "BENCH_*.json" in text


# -------------------------------------------------- watchdog --explain


def test_watchdog_explain_end_to_end(tmp_path, capsys):
    """The ISSUE acceptance scenario through the real CLI: a 2x cost
    injection on one potrf template must exit 1 with that template ranked
    first at >= 50% of the makespan delta, and write the root-cause
    JSON + HTML artifacts."""
    import json as _json

    d = str(tmp_path)
    assert bench_main(["--update-baseline", "--history-dir", d,
                       "--apps", "potrf", "--seeds", "0,1"]) == 0
    capsys.readouterr()
    code = bench_main(["--check-regressions", "--history-dir", d,
                       "--apps", "potrf", "--seeds", "0,1",
                       "--slowdown", "TRSM=2", "--explain"])
    captured = capsys.readouterr()
    assert code == 1
    assert "REGRESSION" in captured.err
    assert "root cause" in captured.out
    assert "=> TRSM accounts for" in captured.out

    rc = _json.loads((tmp_path / "rootcause-potrf.json").read_text())
    assert rc["schema"] == "repro.telemetry/rootcause-v1"
    top = rc["explanation"]["attributions"][0]
    assert top["template"] == "TRSM"
    assert top["share"] >= 0.5
    assert top["exact_baseline"] is True
    assert rc["diff"]["schema"] == "repro.telemetry/diff-v1"

    html = (tmp_path / "rootcause-potrf.html").read_text()
    assert "rootcause" in html       # the root-cause block leads the page
    assert "sidebyside" in html      # both Gantt timelines rendered
    assert "TRSM" in html


def test_watchdog_explain_out_dir(tmp_path, capsys):
    d = str(tmp_path / "hist")
    out = str(tmp_path / "artifacts")
    (tmp_path / "hist").mkdir()
    assert bench_main(["--update-baseline", "--history-dir", d,
                       "--apps", "potrf", "--seeds", "0"]) == 0
    code = bench_main(["--check-regressions", "--history-dir", d,
                       "--apps", "potrf", "--seeds", "0",
                       "--slowdown", "GEMM=2", "--explain",
                       "--explain-out", out])
    capsys.readouterr()
    assert code == 1
    assert (tmp_path / "artifacts" / "rootcause-potrf.json").exists()
    assert (tmp_path / "artifacts" / "rootcause-potrf.html").exists()
