"""Tests for the ASCII chart renderer."""

from repro.bench.harness import Series
from repro.bench.plot import ascii_chart, print_chart


def test_chart_contains_marks_and_legend():
    s1 = Series("alpha", [(1, 10.0), (4, 40.0)])
    s2 = Series("beta", [(1, 5.0), (4, 20.0)])
    out = ascii_chart([s1, s2], width=30, height=8, title="demo")
    assert "demo" in out
    assert "o alpha" in out and "x beta" in out
    assert out.count("o") >= 2  # marks for both alpha points


def test_chart_empty():
    assert ascii_chart([Series("e")]) == "(no data)"


def test_chart_single_point():
    out = ascii_chart([Series("p", [(2, 7.0)])], width=20, height=5)
    assert "o" in out


def test_chart_handles_none_points():
    s = Series("gap", [(1, 1.0), (2, None), (4, 4.0)])
    out = ascii_chart([s], width=20, height=5)
    assert "o" in out


def test_chart_linear_x():
    s = Series("lin", [(0, 0.0), (10, 10.0)])
    out = ascii_chart([s], width=20, height=5, logx=False)
    assert "o" in out


def test_chart_ylabel():
    out = ascii_chart([Series("y", [(1, 1.0)])], ylabel="Gflop/s")
    assert "Gflop/s" in out


def test_print_chart(capsys):
    print_chart([Series("c", [(1, 2.0), (2, 3.0)])], width=20, height=5)
    assert "c" in capsys.readouterr().out
