"""Correctness and structure tests for the Cholesky TTG."""

import numpy as np
import pytest

from repro.apps.cholesky import build_cholesky_graph, cholesky_ttg
from repro.linalg import BlockCyclicDistribution, TiledMatrix, spd_matrix
from repro.runtime import MadnessBackend, ParsecBackend
from repro.sim.cluster import Cluster, HAWK


def factor(n, b, nodes, backend_cls=ParsecBackend, grid=None, **kw):
    a = spd_matrix(n, seed=n + b)
    dist = BlockCyclicDistribution(*grid) if grid else BlockCyclicDistribution.for_ranks(nodes)
    A = TiledMatrix.from_dense(a, b, dist, lower_only=True)
    backend = backend_cls(Cluster(HAWK, nodes))
    res = cholesky_ttg(A, backend, **kw)
    return a, res


@pytest.mark.parametrize("n,b,nodes", [
    (16, 16, 1),     # single tile
    (32, 16, 1),
    (64, 16, 2),
    (96, 16, 4),
    (64, 8, 7),      # non-square rank count
    (80, 32, 4),     # ragged last tile (80 = 2*32 + 16)
    (100, 32, 4),    # ragged
])
def test_matches_numpy(n, b, nodes):
    a, res = factor(n, b, nodes)
    L = np.tril(res.L.to_dense())
    assert np.allclose(L, np.linalg.cholesky(a))


def test_madness_backend_identical_factor():
    a, res_p = factor(64, 16, 4, ParsecBackend)
    _, res_m = factor(64, 16, 4, MadnessBackend)
    assert np.allclose(res_p.L.to_dense(), res_m.L.to_dense())


def test_task_counts_formula():
    n, b = 96, 16  # nt = 6
    _, res = factor(n, b, 4)
    nt = 6
    assert res.task_counts["POTRF"] == nt
    assert res.task_counts["TRSM"] == nt * (nt - 1) // 2
    assert res.task_counts["SYRK"] == nt * (nt - 1) // 2
    assert res.task_counts["GEMM"] == nt * (nt - 1) * (nt - 2) // 6
    assert res.task_counts["RESULT"] == nt * (nt + 1) // 2


def test_input_matrix_not_mutated():
    n, b = 48, 16
    a = spd_matrix(n, seed=3)
    A = TiledMatrix.from_dense(a, b, BlockCyclicDistribution(2, 2), lower_only=True)
    before = A.to_dense().copy()
    cholesky_ttg(A, ParsecBackend(Cluster(HAWK, 4)))
    assert np.array_equal(A.to_dense(), before)


def test_priorities_off_still_correct():
    a, res = factor(64, 16, 4, priorities=False)
    assert np.allclose(np.tril(res.L.to_dense()), np.linalg.cholesky(a))


def test_synthetic_mode_runs_and_reports():
    A = TiledMatrix(4096, 256, BlockCyclicDistribution.for_ranks(4), synthetic=True)
    res = cholesky_ttg(A, ParsecBackend(Cluster(HAWK.with_workers(8), 4)))
    assert res.makespan > 0
    assert res.gflops > 0
    assert res.L.synthetic


def test_non_spd_raises():
    from repro.linalg.kernels import KernelError

    a = -np.eye(32)
    A = TiledMatrix.from_dense(a, 16, lower_only=True)
    with pytest.raises(KernelError):
        cholesky_ttg(A, ParsecBackend(Cluster(HAWK, 1)))


def test_makespan_positive_and_deterministic():
    _, r1 = factor(64, 16, 4)
    _, r2 = factor(64, 16, 4)
    assert r1.makespan == r2.makespan > 0


def test_graph_structure():
    A = TiledMatrix(64, 16, BlockCyclicDistribution(1, 1), synthetic=True)
    out = TiledMatrix(64, 16, BlockCyclicDistribution(1, 1), synthetic=True)
    graph, initiator = build_cholesky_graph(A, out)
    names = {tt.name for tt in graph.tts}
    assert names == {"INITIATOR", "POTRF", "TRSM", "SYRK", "GEMM", "RESULT"}
    dot = graph.to_dot()
    assert '"POTRF" -> "TRSM"' in dot


def test_larger_factor_uses_more_time():
    _, small = factor(48, 16, 2)
    _, large = factor(96, 16, 2)
    assert large.makespan > small.makespan


# ------------------------------------------------------- left-looking variant


@pytest.mark.parametrize("n,b,nodes", [(48, 16, 1), (96, 16, 4), (80, 32, 3)])
def test_left_looking_matches_numpy(n, b, nodes):
    from repro.apps.cholesky import cholesky_left_looking

    a = spd_matrix(n, seed=n)
    A = TiledMatrix.from_dense(a, b, BlockCyclicDistribution.for_ranks(nodes),
                               lower_only=True)
    res = cholesky_left_looking(A, ParsecBackend(Cluster(HAWK, nodes)))
    assert np.allclose(np.tril(res.L.to_dense()), np.linalg.cholesky(a))


def test_left_looking_task_counts():
    from repro.apps.cholesky import cholesky_left_looking

    n, b = 96, 16  # nt = 6
    a = spd_matrix(n, seed=7)
    A = TiledMatrix.from_dense(a, b, BlockCyclicDistribution(2, 2),
                               lower_only=True)
    res = cholesky_left_looking(A, ParsecBackend(Cluster(HAWK, 4)))
    nt = 6
    ntiles = nt * (nt + 1) // 2
    assert res.task_counts["ACCUM"] == ntiles
    assert res.task_counts["RESULT"] == ntiles
    assert res.task_counts["POTRF"] == nt
    assert res.task_counts["TRSM"] == nt * (nt - 1) // 2
    # one contribution per (m >= k > j) triple
    expect_contrib = sum(k for m in range(nt) for k in range(m + 1))
    assert res.task_counts["CONTRIB"] == expect_contrib


def test_left_and_right_looking_agree():
    from repro.apps.cholesky import cholesky_left_looking

    a = spd_matrix(64, seed=8)
    A1 = TiledMatrix.from_dense(a, 16, BlockCyclicDistribution(2, 1),
                                lower_only=True)
    A2 = TiledMatrix.from_dense(a, 16, BlockCyclicDistribution(2, 1),
                                lower_only=True)
    right = cholesky_ttg(A1, ParsecBackend(Cluster(HAWK, 2)))
    left = cholesky_left_looking(A2, ParsecBackend(Cluster(HAWK, 2)))
    assert np.allclose(right.L.to_dense(), left.L.to_dense())


def test_left_looking_madness_backend():
    from repro.apps.cholesky import cholesky_left_looking

    a = spd_matrix(48, seed=9)
    A = TiledMatrix.from_dense(a, 16, BlockCyclicDistribution(1, 2),
                               lower_only=True)
    res = cholesky_left_looking(A, MadnessBackend(Cluster(HAWK, 2)))
    assert np.allclose(np.tril(res.L.to_dense()), np.linalg.cholesky(a))
