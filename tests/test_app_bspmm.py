"""Correctness and structure tests for block-sparse SUMMA (BSPMM)."""

import numpy as np
import pytest

from repro.apps.bspmm import BspmmPlan, bspmm_ttg
from repro.linalg import (
    BlockCyclicDistribution,
    BlockSparseMatrix,
    IrregularTiling,
    yukawa_blocksparse,
)
from repro.linalg.tile import MatrixTile
from repro.runtime import MadnessBackend, ParsecBackend
from repro.sim.cluster import Cluster, HAWK


def small_matrix(natoms=25, seed=0, **kw):
    return yukawa_blocksparse(natoms, target_tile=24, seed=seed, **kw)


def multiply(a, b, nodes, backend_cls=ParsecBackend, **kw):
    backend = backend_cls(Cluster(HAWK, nodes))
    return bspmm_ttg(a, b, backend, **kw)


def test_square_matches_dense():
    a = small_matrix()
    res = multiply(a, a, 4)
    assert np.allclose(res.C.to_dense(), a.to_dense() @ a.to_dense())


def test_rectangular_tilings():
    rt = IrregularTiling([3, 5, 2])
    ct = IrregularTiling([4, 6])
    kt = IrregularTiling([2, 7, 3])
    rng = np.random.default_rng(0)
    a_dense = rng.standard_normal((rt.n, kt.n))
    b_dense = rng.standard_normal((kt.n, ct.n))
    a = BlockSparseMatrix.from_dense(a_dense, rt, kt)
    b = BlockSparseMatrix.from_dense(b_dense, kt, ct)
    res = multiply(a, b, 2)
    assert np.allclose(res.C.to_dense(), a_dense @ b_dense)


def test_sparse_input_sparse_output():
    rt = IrregularTiling([4, 4, 4])
    a = BlockSparseMatrix(rt, rt)
    rng = np.random.default_rng(1)
    a.set_block(0, 0, MatrixTile(4, 4, rng.standard_normal((4, 4))))
    a.set_block(1, 2, MatrixTile(4, 4, rng.standard_normal((4, 4))))
    res = multiply(a, a, 2)
    dense = a.to_dense()
    assert np.allclose(res.C.to_dense(), dense @ dense)
    # only (0,0)@(0,0) contributes -> a single C block
    assert res.C.block_keys() == [(0, 0)]


def test_mismatched_inner_tilings_rejected():
    a = BlockSparseMatrix(IrregularTiling([4]), IrregularTiling([4]))
    b = BlockSparseMatrix(IrregularTiling([5]), IrregularTiling([4]))
    with pytest.raises(ValueError):
        multiply(a, b, 1)


@pytest.mark.parametrize("window,read_window", [(1, 1), (2, 4), (8, 16)])
def test_feedback_windows_preserve_result(window, read_window):
    a = small_matrix(natoms=15, seed=2)
    ref = a.to_dense() @ a.to_dense()
    res = multiply(a, a, 3, window=window, read_window=read_window)
    assert np.allclose(res.C.to_dense(), ref)


def test_invalid_windows():
    a = small_matrix(natoms=5)
    with pytest.raises(ValueError):
        multiply(a, a, 1, window=0)


def test_madness_backend_agrees():
    a = small_matrix(natoms=15, seed=3)
    rp = multiply(a, a, 3, ParsecBackend)
    rm = multiply(a, a, 3, MadnessBackend)
    assert np.allclose(rp.C.to_dense(), rm.C.to_dense())


def test_plan_statistics():
    a = small_matrix(natoms=20, seed=4)
    plan = BspmmPlan.build(a, a, BlockCyclicDistribution.for_ranks(4))
    assert plan.num_gemms == sum(len(ks) for ks in plan.chains.values())
    assert plan.total_flops > 0
    # every gemm has both operands present
    for (i, j), ks in plan.chains.items():
        for k in ks:
            assert (i, k) in a
            assert (k, j) in a
    # dests are owners of the C blocks involved
    for (i, k), ranks in plan.a_dests.items():
        assert all(0 <= r < 4 for r in ranks)


def test_plan_chain_pos():
    a = small_matrix(natoms=10, seed=5)
    plan = BspmmPlan.build(a, a, BlockCyclicDistribution.for_ranks(2))
    (i, j), ks = next(iter(plan.chains.items()))
    pos, length = plan.chain_pos(i, j, ks[0])
    assert pos == 0 and length == len(ks)


def test_gemms_per_rank_step_consistent():
    a = small_matrix(natoms=12, seed=6)
    plan = BspmmPlan.build(a, a, BlockCyclicDistribution.for_ranks(3))
    assert sum(plan.gemms_per_rank_step.values()) == plan.num_gemms


def test_task_counts_structure():
    a = small_matrix(natoms=10, seed=7)
    res = multiply(a, a, 2)
    tc = res.task_counts
    assert tc["MULTIPLY_ADD"] == res.plan.num_gemms
    assert tc["READ_SP_A"] == len(res.plan.a_dests)
    assert tc["WRITE_C"] == len(res.plan.chains)
    assert tc["LSTORE_A"] == sum(len(r) for r in res.plan.a_dests.values())
    assert tc["LBCAST_A"] == tc["LSTORE_A"]


def test_synthetic_mode():
    a = yukawa_blocksparse(40, target_tile=32, seed=8, synthetic=True)
    res = multiply(a, a, 4)
    assert res.makespan > 0 and res.gflops > 0
    # synthetic outputs carry no data
    for _, t in res.C.blocks():
        assert t.is_synthetic


def test_gflops_accounting():
    a = small_matrix(natoms=10, seed=9)
    res = multiply(a, a, 2)
    assert res.gflops == pytest.approx(
        res.plan.total_flops / res.makespan / 1e9
    )


# ---------------------------------------------------------- 2.5D variant


def test_25d_matches_dense():
    from repro.apps.bspmm import bspmm_ttg_25d

    a = small_matrix(natoms=20, seed=10)
    ref = a.to_dense() @ a.to_dense()
    for nranks, c in ((4, 2), (8, 2), (8, 4)):
        backend = ParsecBackend(Cluster(HAWK, nranks))
        res = bspmm_ttg_25d(a, a, backend, c=c)
        assert np.allclose(res.C.to_dense(), ref), (nranks, c)


def test_25d_c1_equals_2d_result():
    from repro.apps.bspmm import bspmm_ttg_25d

    a = small_matrix(natoms=15, seed=11)
    r2d = multiply(a, a, 4)
    r25 = bspmm_ttg_25d(a, a, ParsecBackend(Cluster(HAWK, 4)), c=1)
    assert np.allclose(r25.C.to_dense(), r2d.C.to_dense())


def test_25d_madness_backend():
    from repro.apps.bspmm import bspmm_ttg_25d

    a = small_matrix(natoms=12, seed=12)
    res = bspmm_ttg_25d(a, a, MadnessBackend(Cluster(HAWK, 8)), c=2)
    assert np.allclose(res.C.to_dense(), a.to_dense() @ a.to_dense())


def test_choose_replication_rule():
    from repro.apps.bspmm import choose_replication

    assert choose_replication(1) == 1
    assert choose_replication(7) == 1
    assert choose_replication(8) == 2
    assert choose_replication(63) == 1  # 2 does not divide 63
    assert choose_replication(64) == 4


def test_25d_plan_partitions_steps_by_layer():
    from repro.apps.bspmm import Bspmm25Plan

    a = small_matrix(natoms=20, seed=13)
    plan = Bspmm25Plan.build(a, a, 8, c=2)
    for (i, j, layer), ks in plan.chains.items():
        assert all(k % 2 == layer for k in ks)
    # every gemm of the 2D plan appears in exactly one layer
    from repro.apps.bspmm import BspmmPlan
    from repro.linalg import BlockCyclicDistribution

    plan2d = BspmmPlan.build(a, a, BlockCyclicDistribution.for_ranks(8))
    assert plan.num_gemms == plan2d.num_gemms
    assert plan.total_flops == pytest.approx(plan2d.total_flops)


def test_25d_invalid_replication():
    from repro.apps.bspmm import bspmm_ttg_25d

    a = small_matrix(natoms=5, seed=14)
    with pytest.raises(ValueError):
        bspmm_ttg_25d(a, a, ParsecBackend(Cluster(HAWK, 3)), c=2)


def test_25d_reduction_counts():
    from repro.apps.bspmm import bspmm_ttg_25d

    a = small_matrix(natoms=20, seed=15)
    backend = ParsecBackend(Cluster(HAWK, 8))
    res = bspmm_ttg_25d(a, a, backend, c=2)
    tc = res.task_counts
    assert tc["REDUCE_C25"] == len(res.plan.chains)
    assert tc["WRITE_C25"] == len(res.plan.chains)
    assert tc["MULTIPLY_ADD25"] == res.plan.num_gemms


# -------------------------------------------------------- dense wrapper


def test_dense_gemm_wrapper():
    from repro.apps.bspmm import dense_gemm_ttg

    rng = np.random.default_rng(20)
    a = rng.standard_normal((50, 37))
    b = rng.standard_normal((37, 44))
    res = dense_gemm_ttg(a, b, ParsecBackend(Cluster(HAWK, 4)), block=16)
    assert np.allclose(res.C.to_dense(), a @ b)


def test_dense_gemm_wrapper_shape_check():
    from repro.apps.bspmm import dense_gemm_ttg

    with pytest.raises(ValueError):
        dense_gemm_ttg(np.zeros((3, 4)), np.zeros((5, 2)),
                       ParsecBackend(Cluster(HAWK, 1)))
