"""Cross-cutting integration tests: multi-seed, multi-backend, multi-grid
equivalence of all four applications, plus tracing/profile integration on
each of them.  These pin down that results are independent of placement,
scheduling policy, and backend -- the core promise of the model.
"""

import numpy as np
import pytest

from repro.apps.bspmm import bspmm_ttg
from repro.apps.cholesky import cholesky_ttg
from repro.apps.floydwarshall import floyd_warshall_ttg, fw_reference
from repro.apps.mra import mra_ttg, random_gaussians
from repro.linalg import (
    BlockCyclicDistribution,
    TiledMatrix,
    random_weight_matrix,
    spd_matrix,
    yukawa_blocksparse,
)
from repro.runtime import MadnessBackend, ParsecBackend
from repro.runtime.base import BackendConfig
from repro.sim import Cluster, HAWK, SEAWULF, Profile, Tracer


@pytest.mark.parametrize("grid", [(1, 1), (1, 4), (2, 2), (4, 1)])
def test_cholesky_result_independent_of_grid(grid):
    a = spd_matrix(64, seed=100)
    A = TiledMatrix.from_dense(a, 16, BlockCyclicDistribution(*grid),
                               lower_only=True)
    res = cholesky_ttg(A, ParsecBackend(Cluster(HAWK, grid[0] * grid[1])))
    assert np.allclose(np.tril(res.L.to_dense()), np.linalg.cholesky(a))


@pytest.mark.parametrize("policy", ["lifo", "fifo", "priority"])
def test_fw_result_independent_of_scheduler(policy):
    w = random_weight_matrix(48, seed=101)
    W = TiledMatrix.from_dense(w, 16, BlockCyclicDistribution(2, 2))
    cfg = BackendConfig(scheduler=policy)
    res = floyd_warshall_ttg(W, ParsecBackend(Cluster(HAWK, 4), config=cfg))
    assert np.allclose(res.W.to_dense(), fw_reference(w))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_bspmm_multi_seed_both_backends(seed):
    a = yukawa_blocksparse(18, target_tile=24, seed=seed)
    ref = a.to_dense() @ a.to_dense()
    for backend_cls in (ParsecBackend, MadnessBackend):
        res = bspmm_ttg(a, a, backend_cls(Cluster(SEAWULF, 3)))
        assert np.allclose(res.C.to_dense(), ref)


def test_mra_result_independent_of_rank_count():
    funcs = random_gaussians(3, d=2, exponent=900.0, seed=102)
    norms = []
    for nodes in (1, 2, 5):
        res = mra_ttg(funcs, ParsecBackend(Cluster(HAWK, nodes)),
                      k=4, thresh=1e-4, max_level=8, initial_level=1)
        norms.append(tuple(res.norms[f] for f in range(3)))
    assert norms[0] == norms[1] == norms[2]


def test_seawulf_slower_than_hawk_for_transfers():
    """Machine calibration sanity: Seawulf's FDR fabric moves the same
    tile slower than Hawk's HDR in virtual time."""
    from repro.linalg.tile import MatrixTile

    times = {}
    for machine in (HAWK, SEAWULF):
        be = ParsecBackend(Cluster(machine, 2))
        be.send_value(0, 1, MatrixTile.synthetic(512, 512), lambda v: None)
        times[machine.name] = be.run()
    assert times["seawulf"] > 2 * times["hawk"]


def test_profile_over_bspmm_run():
    tracer = Tracer()
    cluster = Cluster(HAWK, 3)
    a = yukawa_blocksparse(15, target_tile=24, seed=3)
    res = bspmm_ttg(a, a, ParsecBackend(cluster, tracer=tracer))
    prof = Profile(tracer, cluster)
    by_name = {s.name: s.count for s in prof.by_template()}
    assert by_name["MULTIPLY_ADD"] == res.plan.num_gemms
    assert prof.parallel_efficiency() > 0
    assert prof.makespan == pytest.approx(res.makespan)


def test_two_graphs_one_backend_sequential():
    """Virtual time accumulates across executions on one backend; results
    stay correct (the paper's runtimes host many DSLs/graphs at once)."""
    be = ParsecBackend(Cluster(HAWK, 2))
    a = spd_matrix(32, seed=5)
    A1 = TiledMatrix.from_dense(a, 16, BlockCyclicDistribution(1, 2),
                                lower_only=True)
    r1 = cholesky_ttg(A1, be)
    t_after_first = be.engine.now
    A2 = TiledMatrix.from_dense(a, 16, BlockCyclicDistribution(1, 2),
                                lower_only=True)
    r2 = cholesky_ttg(A2, be)
    assert np.allclose(r1.L.to_dense(), r2.L.to_dense())
    assert be.engine.now > t_after_first
    # per-run makespans measured from each run's start agree
    assert r1.makespan == pytest.approx(r2.makespan, rel=0.05)


def test_more_workers_never_slower():
    """Adding workers to a node cannot increase the virtual makespan."""
    times = []
    for workers in (2, 8, 32):
        a = TiledMatrix(2048, 128, BlockCyclicDistribution.for_ranks(2),
                        synthetic=True)
        be = ParsecBackend(Cluster(HAWK.with_workers(workers), 2))
        times.append(cholesky_ttg(a, be).makespan)
    assert times[0] >= times[1] >= times[2]


def test_faster_network_never_slower():
    from dataclasses import replace

    times = []
    for bw in (2.0e9, 24.0e9):
        machine = replace(HAWK.with_workers(8),
                          network=replace(HAWK.network, bandwidth=bw))
        a = TiledMatrix(2048, 128, BlockCyclicDistribution.for_ranks(4),
                        synthetic=True)
        times.append(cholesky_ttg(a, ParsecBackend(Cluster(machine, 4))).makespan)
    assert times[1] <= times[0]
