"""Tests for the MRA application: multiwavelets, trees, and the TTG."""

import math

import numpy as np
import pytest

from repro.apps.mra import (
    Gaussian,
    GaussianSum,
    Multiwavelet,
    mra_ttg,
    project_adaptive,
    random_gaussians,
)
from repro.apps.mra.data import MraMessage
from repro.runtime import MadnessBackend, ParsecBackend
from repro.sim.cluster import Cluster, HAWK


# -------------------------------------------------------------- multiwavelet


@pytest.mark.parametrize("k", [1, 2, 4, 7])
def test_filter_matrix_orthogonal(k):
    mw = Multiwavelet(k, 1)
    w = mw.filter_matrix
    assert np.allclose(w @ w.T, np.eye(2 * k), atol=1e-12)


@pytest.mark.parametrize("k,d", [(3, 1), (4, 2), (3, 3)])
def test_filter_unfilter_roundtrip(k, d):
    mw = Multiwavelet(k, d)
    rng = np.random.default_rng(42)
    kids = [rng.standard_normal((k,) * d) for _ in range(2**d)]
    s, sd = mw.filter(kids)
    back = mw.unfilter(sd)
    for a, b in zip(kids, back):
        assert np.allclose(a, b)


def test_filter_parseval(apply_count=5):
    mw = Multiwavelet(4, 2)
    rng = np.random.default_rng(1)
    kids = [rng.standard_normal((4, 4)) for _ in range(4)]
    _, sd = mw.filter(kids)
    assert np.isclose(sum(np.sum(c * c) for c in kids), np.sum(sd * sd))


def test_wavelet_norm_excludes_scaling_corner():
    mw = Multiwavelet(3, 2)
    rng = np.random.default_rng(2)
    kids = [rng.standard_normal((3, 3)) for _ in range(4)]
    s, sd = mw.filter(kids)
    assert np.isclose(
        mw.wavelet_norm2(sd), np.sum(sd * sd) - np.sum(s * s)
    )


def test_projection_exact_for_polynomials():
    mw = Multiwavelet(5, 1)
    f = lambda x: 2.0 - x[0] + 0.5 * x[0] ** 3
    for box in [(0, (0,)), (2, (1,)), (3, (7,))]:
        s = mw.project_box(f, box)
        lo = box[1][0] / 2 ** box[0]
        hi = (box[1][0] + 1) / 2 ** box[0]
        xs = np.linspace(lo + 1e-9, hi - 1e-9, 5)[None, :]
        assert np.allclose(mw.eval_from_coeffs(s, box, xs), f(xs))


def test_projection_2d_polynomial():
    mw = Multiwavelet(4, 2)
    f = lambda x: 1.0 + x[0] * x[1] + x[1] ** 2
    s = mw.project_box(f, (1, (0, 1)))
    pts = np.stack([
        np.linspace(0.01, 0.49, 4),
        np.linspace(0.51, 0.99, 4),
    ])
    assert np.allclose(mw.eval_from_coeffs(s, (1, (0, 1)), pts), f(pts))


def test_two_scale_consistency():
    mw = Multiwavelet(6, 2)
    g = Gaussian((0.4, 0.6), 5.0, 1.0)  # smooth: quadrature near-exact
    kids = [mw.project_box(g, b) for b in mw.children((1, (0, 1)))]
    s, _ = mw.filter(kids)
    s_direct = mw.project_box(g, (1, (0, 1)))
    assert np.max(np.abs(s - s_direct)) < 2e-5


def test_children_parent_round_trip():
    mw = Multiwavelet(2, 3)
    box = (2, (1, 2, 3))
    kids = mw.children(box)
    assert len(kids) == 8
    assert len(set(kids)) == 8
    for c in kids:
        assert Multiwavelet.parent(c) == box
    idxs = sorted(Multiwavelet.child_index(c) for c in kids)
    assert idxs == list(range(8))


def test_root_has_no_parent():
    with pytest.raises(ValueError):
        Multiwavelet.parent((0, (0,)))


def test_invalid_orders():
    with pytest.raises(ValueError):
        Multiwavelet(0, 1)
    with pytest.raises(ValueError):
        Multiwavelet(3, 0)


def test_gaussian_analytic_norms():
    g = Gaussian((0.5, 0.5), 200.0, 2.0)
    assert g.norm2_analytic() == pytest.approx(4.0 * (math.pi / 400.0))
    gs = GaussianSum([g, g])
    # ||2g||^2 = 4 ||g||^2
    assert gs.norm2_analytic() == pytest.approx(4 * g.norm2_analytic())


# --------------------------------------------------------------------- tree


@pytest.fixture(scope="module")
def tree_setup():
    mw = Multiwavelet(5, 2)
    gs = GaussianSum([
        Gaussian((0.4, 0.55), 400.0, 1.5),
        Gaussian((0.7, 0.3), 800.0, 0.7),
    ])
    tree = project_adaptive(mw, gs, thresh=1e-6, max_level=9, initial_level=1)
    return mw, gs, tree


def test_adaptive_tree_is_adaptive(tree_setup):
    mw, gs, tree = tree_setup
    levels = {b[0] for b in tree.leaves}
    assert len(levels) > 1  # irregular refinement depth


def test_tree_norm_matches_analytic(tree_setup):
    mw, gs, tree = tree_setup
    assert tree.norm2() == pytest.approx(gs.norm2_analytic(), rel=1e-4)


def test_compress_preserves_norm(tree_setup):
    mw, gs, tree = tree_setup
    ct = tree.compress()
    assert ct.norm2() == pytest.approx(tree.norm2(), rel=1e-12)


def test_compress_reconstruct_identity(tree_setup):
    mw, gs, tree = tree_setup
    rt = tree.compress().reconstruct()
    assert set(rt.leaves) == set(tree.leaves)
    for b in tree.leaves:
        assert np.allclose(rt.leaves[b], tree.leaves[b])


def test_tree_evaluate_matches_function(tree_setup):
    mw, gs, tree = tree_setup
    pts = np.random.default_rng(3).uniform(0.15, 0.85, size=(2, 30))
    assert np.max(np.abs(tree.evaluate(pts) - gs(pts))) < 1e-3


def test_internal_boxes_deepest_first(tree_setup):
    _, _, tree = tree_setup
    boxes = tree.internal_boxes()
    levels = [b[0] for b in boxes]
    assert levels == sorted(levels, reverse=True)
    assert (0, (0, 0)) == boxes[-1]


def test_max_level_caps_refinement():
    mw = Multiwavelet(3, 1)
    g = Gaussian((0.5,), 1e5, 1.0)  # too sharp to resolve by level 5
    tree = project_adaptive(mw, g, thresh=1e-12, max_level=5, initial_level=3)
    assert tree.depth() == 5


# ---------------------------------------------------------------- MraMessage


def test_mra_message_splitmd_roundtrip():
    rng = np.random.default_rng(4)
    msg = MraMessage((rng.standard_normal((3, 3)), None), ("meta", 1), inflate=2.0)
    meta = msg.splitmd_metadata()
    clone = MraMessage.splitmd_allocate(meta)
    clone.splitmd_fill(msg.splitmd_payload())
    assert np.allclose(clone.arrays[0], msg.arrays[0])
    assert clone.arrays[1] is None
    assert clone.meta == ("meta", 1)


def test_mra_message_nbytes_inflated():
    a = np.zeros((4, 4))
    assert MraMessage((a,), (), inflate=3.0).nbytes == pytest.approx(
        3 * a.nbytes + 32
    )


def test_mra_message_clone_independent():
    a = np.zeros((2, 2))
    m = MraMessage((a,), ())
    c = m.clone()
    c.arrays[0][0, 0] = 5.0
    assert m.arrays[0][0, 0] == 0.0


# ------------------------------------------------------------------ TTG MRA


@pytest.mark.parametrize("backend_cls", [ParsecBackend, MadnessBackend])
def test_ttg_matches_sequential(backend_cls):
    funcs = random_gaussians(4, d=2, exponent=1500.0, seed=6)
    backend = backend_cls(Cluster(HAWK, 4))
    res = mra_ttg(funcs, backend, k=4, thresh=1e-5, max_level=9, initial_level=1)
    mw = Multiwavelet(4, 2)
    for fid, f in enumerate(funcs):
        ref = project_adaptive(mw, f, 1e-5, max_level=9, initial_level=1)
        assert set(res.leaves[fid]) == set(ref.leaves)
        for b in ref.leaves:
            assert np.allclose(res.leaves[fid][b], ref.leaves[b])
        assert res.norms[fid] == pytest.approx(ref.norm2(), rel=1e-10)


def test_ttg_mra_3d():
    funcs = random_gaussians(2, d=3, exponent=500.0, seed=7)
    res = mra_ttg(funcs, ParsecBackend(Cluster(HAWK, 2)), k=3, thresh=1e-3,
                  max_level=6, initial_level=1)
    mw = Multiwavelet(3, 3)
    for fid, f in enumerate(funcs):
        ref = project_adaptive(mw, f, 1e-3, max_level=6, initial_level=1)
        assert res.norms[fid] == pytest.approx(ref.norm2(), rel=1e-10)


def test_ttg_task_counts_consistent():
    funcs = random_gaussians(3, d=2, exponent=1000.0, seed=8)
    res = mra_ttg(funcs, ParsecBackend(Cluster(HAWK, 2)), k=4, thresh=1e-4,
                  max_level=8, initial_level=1)
    tc = res.task_counts
    # one compress and one reconstruct per internal box == one project each
    assert tc["PROJECT"] == tc["COMPRESS"] == tc["RECONSTRUCT"]
    assert tc["OUTPUT"] == res.total_nodes
    assert tc["NORM_RESULT"] == 3


def test_random_gaussians_properties():
    funcs = random_gaussians(10, d=3, exponent=2e4, seed=9)
    assert len(funcs) == 10
    for f in funcs:
        assert f.d == 3
        (g,) = f.terms
        assert all(0.2 <= c <= 0.8 for c in g.center)
    # deterministic
    funcs2 = random_gaussians(10, d=3, exponent=2e4, seed=9)
    assert all(
        f1.terms[0].center == f2.terms[0].center for f1, f2 in zip(funcs, funcs2)
    )


def test_mra_requires_functions():
    with pytest.raises(ValueError):
        mra_ttg([], ParsecBackend(Cluster(HAWK, 1)))


# ----------------------------------------------------- compressed algebra


@pytest.fixture(scope="module")
def two_trees():
    mw = Multiwavelet(5, 2)
    f = GaussianSum([Gaussian((0.4, 0.5), 300.0, 1.0)])
    g = GaussianSum([Gaussian((0.6, 0.6), 700.0, 0.5)])
    tf = project_adaptive(mw, f, 1e-7, max_level=9, initial_level=1).compress()
    tg = project_adaptive(mw, g, 1e-7, max_level=9, initial_level=1).compress()
    return mw, f, g, tf, tg


def test_add_matches_analytic_norm(two_trees):
    mw, f, g, tf, tg = two_trees
    th = tf.add(tg)
    fg = GaussianSum(f.terms + g.terms)
    assert th.norm2() == pytest.approx(fg.norm2_analytic(), rel=1e-4)


def test_add_pointwise(two_trees):
    mw, f, g, tf, tg = two_trees
    rt = tf.add(tg).reconstruct()
    pts = np.random.default_rng(5).uniform(0.25, 0.75, size=(2, 15))
    fg = GaussianSum(f.terms + g.terms)
    assert np.max(np.abs(rt.evaluate(pts) - fg(pts))) < 1e-4


def test_add_union_tree(two_trees):
    mw, f, g, tf, tg = two_trees
    th = tf.add(tg)
    assert set(th.diffs) == set(tf.diffs) | set(tg.diffs)


def test_add_commutative(two_trees):
    mw, f, g, tf, tg = two_trees
    a = tf.add(tg)
    b = tg.add(tf)
    assert a.norm2() == pytest.approx(b.norm2(), rel=1e-12)
    assert np.allclose(a.s0, b.s0)


def test_scale_linearity(two_trees):
    mw, f, g, tf, tg = two_trees
    assert tf.scale(3.0).norm2() == pytest.approx(9.0 * tf.norm2(), rel=1e-12)
    assert tf.scale(-1.0).add(tf).norm2() == pytest.approx(0.0, abs=1e-18)


def test_truncate_error_bound(two_trees):
    mw, f, g, tf, tg = two_trees
    th = tf.add(tg)
    thresh = 1e-3
    tt = th.truncate(thresh)
    dropped = len(th.diffs) - len(tt.diffs)
    assert dropped > 0
    # Parseval error bound: sqrt(sum of dropped wavelet norms^2)
    import math as _math
    bound = _math.sqrt(dropped) * thresh
    assert abs(_math.sqrt(tt.norm2()) - _math.sqrt(th.norm2())) <= bound


def test_truncate_keeps_tree_connected(two_trees):
    mw, f, g, tf, tg = two_trees
    tt = tf.add(tg).truncate(1e-4)
    for box in tt.diffs:
        n, l = box
        if n > 0:
            assert Multiwavelet.parent(box) in tt.diffs


def test_add_rejects_mismatched_bases():
    mw1 = Multiwavelet(3, 1)
    mw2 = Multiwavelet(4, 1)
    g = Gaussian((0.5,), 50.0, 1.0)
    t1 = project_adaptive(mw1, g, 1e-5, max_level=7).compress()
    t2 = project_adaptive(mw2, g, 1e-5, max_level=7).compress()
    with pytest.raises(ValueError):
        t1.add(t2)
