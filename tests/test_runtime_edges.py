"""Runtime corner cases: rank bounds, stats dict, engine edge behavior."""

import pytest

from repro.runtime import ParsecBackend
from repro.runtime.base import BackendConfig, RunStats
from repro.sim.cluster import Cluster, HAWK
from repro.sim.engine import Engine


def test_submit_out_of_range_rank():
    be = ParsecBackend(Cluster(HAWK, 2))
    with pytest.raises(IndexError):
        be.submit(5, lambda: None)


def test_stats_as_dict_round_trip():
    s = RunStats(tasks_executed=3, remote_bytes=100)
    d = s.as_dict()
    assert d["tasks_executed"] == 3
    assert d["remote_bytes"] == 100
    assert set(d) == set(RunStats().as_dict())


def test_schedule_at_now_is_allowed():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run()
    hit = []
    eng.schedule_at(eng.now, hit.append, 1)  # exactly now: legal
    eng.run()
    assert hit == [1]


def test_empty_whitelist_blocks_all_protocols():
    be = ParsecBackend(
        Cluster(HAWK, 2), config=BackendConfig(serialization_allowed=())
    )
    with pytest.raises(TypeError):
        be.send_value(0, 1, {"x": 1}, lambda v: None)


def test_nranks_and_capabilities():
    be = ParsecBackend(Cluster(HAWK, 3))
    assert be.nranks == 3
    assert be.supports_splitmd is True
    from repro.runtime import MadnessBackend

    bm = MadnessBackend(Cluster(HAWK, 3))
    assert bm.supports_splitmd is False
    assert bm.config.copy_on_cref is True


def test_queued_and_busy_counters():
    machine = HAWK.with_workers(1)
    be = ParsecBackend(Cluster(machine, 1))
    be.submit(0, lambda: None, flops=2.5e10)  # 1 s: occupies the worker
    be.submit(0, lambda: None)
    be.submit(0, lambda: None)
    pool = be.pools[0]
    assert pool.busy_workers == 1
    assert pool.queued == 2
    be.run()
    assert pool.busy_workers == 0
    assert pool.queued == 0
