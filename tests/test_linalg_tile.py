"""Tests for MatrixTile."""

import numpy as np
import pytest

from repro.linalg.tile import MatrixTile


def test_construction_and_shape():
    t = MatrixTile(3, 5, np.ones((3, 5)))
    assert t.shape == (3, 5)
    assert t.nbytes == 3 * 5 * 8
    assert not t.is_synthetic


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        MatrixTile(3, 3, np.ones((2, 2)))


def test_invalid_dims():
    with pytest.raises(ValueError):
        MatrixTile(0, 3)


def test_zeros_and_synthetic():
    z = MatrixTile.zeros(4, 4)
    assert np.all(z.data == 0)
    s = MatrixTile.synthetic(4, 4)
    assert s.is_synthetic and s.nbytes == 128
    assert s.norm() == 0.0


def test_clone_independent():
    t = MatrixTile.zeros(2, 2)
    c = t.clone()
    c.data[0, 0] = 9
    assert t.data[0, 0] == 0
    assert MatrixTile.synthetic(2, 2).clone().is_synthetic


def test_equality_and_allclose():
    a = MatrixTile(2, 2, np.eye(2))
    b = MatrixTile(2, 2, np.eye(2))
    assert a == b
    assert a.allclose(b)
    b.data[0, 0] += 1e-12
    assert a != b
    assert a.allclose(b)
    assert a != MatrixTile.synthetic(2, 2)
    assert MatrixTile.synthetic(2, 2) == MatrixTile.synthetic(2, 2)


def test_norm():
    t = MatrixTile(2, 2, np.array([[3.0, 0], [0, 4.0]]))
    assert t.norm() == pytest.approx(5.0)


def test_dtype_coerced_to_float64():
    t = MatrixTile(2, 2, np.ones((2, 2), dtype=np.int32))
    assert t.data.dtype == np.float64


def test_splitmd_real_roundtrip():
    rng = np.random.default_rng(0)
    t = MatrixTile(4, 6, rng.standard_normal((4, 6)))
    meta = t.splitmd_metadata()
    clone = MatrixTile.splitmd_allocate(meta)
    clone.splitmd_fill(t.splitmd_payload())
    assert clone.allclose(t)


def test_splitmd_synthetic():
    t = MatrixTile.synthetic(3, 3)
    assert t.splitmd_payload() is None
    clone = MatrixTile.splitmd_allocate(t.splitmd_metadata())
    assert clone.is_synthetic
