"""Shared-nothing multiprocess engine: parity, engagement, fallback,
result delivery, and shared-memory hygiene.

The determinism claim of :mod:`repro.sim.mpshard` is asserted at full
strength here, mirroring ``test_engine_parity`` for the in-process
engines: run stats, per-template task counts, tracer task/message
records, and canonical sanitizer findings must be *identical* to the
sequential engine -- and the runs must actually have executed
multiprocess (``mp_windows > 0``, no silent fallback), because a parity
test that quietly compared the fallback path against itself would prove
nothing.
"""

import os
import warnings

import numpy as np
import pytest

from repro import core as ttg
from repro.runtime import ParsecBackend
from repro.sim import Cluster, HAWK, Tracer
from repro.sim.mpshard import MpShardedEngine


def _mp_available() -> bool:
    """True if this host can fork workers and create shm segments."""
    import multiprocessing as mp

    if "fork" not in mp.get_all_start_methods():
        return False
    try:
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=16)
        seg.close()
        seg.unlink()
    except (OSError, PermissionError):
        return False
    return True


pytestmark = pytest.mark.skipif(
    not _mp_available(),
    reason="fork or shared memory unavailable in this sandbox")


def _run(app, kind, nranks, trace=False):
    """One simulated run; returns everything comparable plus the engine."""
    tracer = Tracer() if trace else None
    cluster = Cluster.with_engine(HAWK.with_workers(4), nranks, engine=kind)
    backend = ParsecBackend(cluster, tracer=tracer)
    if app == "potrf":
        from repro.apps.cholesky import cholesky_ttg
        from repro.bench.history import SeededBlockCyclic
        from repro.linalg import TiledMatrix

        a = TiledMatrix(768, 128, SeededBlockCyclic.for_ranks(nranks, 0),
                        synthetic=True)
        res = cholesky_ttg(a, backend)
    elif app == "fw":
        from repro.apps.floydwarshall import floyd_warshall_ttg
        from repro.bench.history import SeededBlockCyclic
        from repro.linalg import TiledMatrix

        w = TiledMatrix(512, 128, SeededBlockCyclic.for_ranks(nranks, 0),
                        synthetic=True)
        res = floyd_warshall_ttg(w, backend)
    elif app == "bspmm":
        from repro.apps.bspmm import bspmm_ttg
        from repro.linalg import yukawa_blocksparse

        a = yukawa_blocksparse(15, target_tile=24, seed=0)
        res = bspmm_ttg(a, a, backend)
    elif app == "mra":
        from repro.apps.mra import mra_ttg, random_gaussians

        res = mra_ttg(random_gaussians(4, seed=0), backend, k=4,
                      thresh=1.0e-4, max_level=5)
    else:  # pragma: no cover
        raise ValueError(app)
    return {
        "stats": backend.stats.as_dict(),
        "makespan": res.makespan,
        "task_counts": dict(res.task_counts),
        "tasks": None if tracer is None else tracer.tasks,
        "messages": None if tracer is None else tracer.messages,
        "engine": cluster.engine,
    }


def _assert_engaged(engine):
    """The run really went multiprocess -- no silent fallback."""
    assert isinstance(engine, MpShardedEngine)
    assert engine.mp_fallback_reason is None, engine.mp_fallback_reason
    assert engine.mp_windows > 0


@pytest.mark.parametrize("nranks", [4, 16])
@pytest.mark.parametrize("app", ["potrf", "fw", "bspmm", "mra"])
def test_mp_matches_sequential(app, nranks):
    seq = _run(app, "seq", nranks)
    mp_ = _run(app, "mp", nranks)
    _assert_engaged(mp_["engine"])
    assert mp_["makespan"] == seq["makespan"]
    assert mp_["stats"] == seq["stats"]
    assert mp_["task_counts"] == seq["task_counts"]


@pytest.mark.parametrize("app", ["potrf", "fw"])
def test_mp_trace_records_identical(app):
    seq = _run(app, "seq", 4, trace=True)
    mp_ = _run(app, "mp", 4, trace=True)
    _assert_engaged(mp_["engine"])
    assert mp_["tasks"] == seq["tasks"]
    assert mp_["messages"] == seq["messages"]


def test_mp_bench_records_identical():
    from repro.bench.history import measure_fw

    a = measure_fw(0, engine="seq").as_dict()
    b = measure_fw(0, engine="mp").as_dict()
    for skip in ("host_seconds", "engine", "git_sha"):
        a.pop(skip), b.pop(skip)
    assert a == b


def test_mp_quiescent_shards_skip_windows():
    # At 16 ranks the tail of the schedule drains most shards early; the
    # coordinator must stop waking workers whose horizon is past the
    # window, and account for it in the health counter.
    mp_ = _run("fw", "mp", 16)
    _assert_engaged(mp_["engine"])
    assert mp_["engine"].mp_windows_skipped > 0
    assert (mp_["engine"].windows_skipped_quiescent
            >= mp_["engine"].mp_windows_skipped)


# ------------------------------------------------------ sanitizer parity


def _faulty_findings(kind):
    def _noop(key, *args):
        pass

    e = ttg.Edge("ab", key_type=int, value_type=int)
    sink = ttg.make_tt(_noop, [e], [], name="SINK", keymap=lambda k: 0)

    def gen_body(key, outs):
        outs.send(0, 5, 1)
        outs.send(0, 5, 2)  # duplicate delivery: SAN001

    gen = ttg.make_tt(gen_body, [], [e], name="GEN", keymap=lambda k: 0)
    backend = ParsecBackend(Cluster.with_engine(HAWK, 2, engine=kind))
    ex = ttg.TaskGraph([gen, sink]).executable(backend, sanitize=True)
    ex.invoke(gen, 0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        ex.fence()
    from repro.analysis.sanitizer import canonical_findings

    return [(f.rule.id, f.location, f.message)
            for f in canonical_findings(ex.sanitizer.findings)]


def test_mp_sanitizer_findings_identical():
    seq = _faulty_findings("seq")
    mp_ = _faulty_findings("mp")
    assert seq  # the fault was detected at all
    assert mp_ == seq


# ------------------------------------------------- fallback equivalence


def test_mp_forced_fallback_is_equivalent_and_reported():
    # An observer hook makes the run ineligible: it must fall back to the
    # in-process sharded path, say why, and still match seq bit-for-bit.
    from repro.apps.floydwarshall import floyd_warshall_ttg
    from repro.bench.history import SeededBlockCyclic
    from repro.linalg import TiledMatrix

    seq = _run("fw", "seq", 4)
    cluster = Cluster.with_engine(HAWK.with_workers(4), 4, engine="mp")
    cluster.engine.on_heartbeat = lambda *a: None
    backend = ParsecBackend(cluster)
    w = TiledMatrix(512, 128, SeededBlockCyclic.for_ranks(4, 0),
                    synthetic=True)
    res = floyd_warshall_ttg(w, backend)
    assert cluster.engine.mp_fallback_reason is not None
    assert cluster.engine.mp_windows == 0
    assert res.makespan == seq["makespan"]
    assert backend.stats.as_dict() == seq["stats"]


def test_mp_single_worker_topology_falls_back():
    eng = MpShardedEngine(nshards=1, lookahead=1.0)
    try:
        assert eng._mp_ineligible(None, None) is not None
    finally:
        eng._release_arena()


# ---------------------------------------------------- result delivery


def test_mp_result_journal_delivers_factor():
    # Execute-mode Cholesky: result tiles are stored by simulated tasks
    # running inside worker processes; the journal must make them visible
    # to the caller, numerically identical to the in-process run.
    from repro.apps.cholesky import cholesky_ttg
    from repro.linalg import TiledMatrix
    from repro.linalg.tiled_matrix import BlockCyclicDistribution

    rng = np.random.default_rng(0)
    m = rng.standard_normal((256, 256))
    spd = m @ m.T + 256 * np.eye(256)

    def factor(kind):
        cluster = Cluster.with_engine(HAWK.with_workers(4), 4, engine=kind)
        backend = ParsecBackend(cluster)
        a = TiledMatrix.from_dense(spd, 64,
                                   BlockCyclicDistribution.for_ranks(4),
                                   lower_only=True)
        res = cholesky_ttg(a, backend)
        return res.L.to_dense(), cluster.engine

    l_seq, _ = factor("seq")
    l_mp, engine = factor("mp")
    _assert_engaged(engine)
    assert np.array_equal(l_mp, l_seq)
    assert np.allclose(np.tril(l_mp), np.linalg.cholesky(spd))


# -------------------------------------------------------- shm hygiene


def _leak_check_run(kill=False):
    """Run fw on mp; returns (engine, run_id, leaked segment names)."""
    from repro.apps.floydwarshall import floyd_warshall_ttg
    from repro.bench.history import SeededBlockCyclic
    from repro.linalg import TiledMatrix, shm

    cluster = Cluster.with_engine(HAWK.with_workers(4), 4, engine="mp")
    engine = cluster.engine
    run_id = engine._arena.run_id
    backend = ParsecBackend(cluster)
    if kill:
        # Dies only inside a forked worker; a no-op in the parent, so the
        # post-abort in-process fallback completes the run normally.
        engine.schedule_at(0.0, _exit_if_child, os.getpid(), rank=1)
    w = TiledMatrix(512, 128, SeededBlockCyclic.for_ranks(4, 0),
                    synthetic=True)
    floyd_warshall_ttg(w, backend)
    return engine, run_id, shm.list_run_segments(run_id)


def _exit_if_child(parent_pid):
    if os.getpid() != parent_pid:
        os._exit(3)


def test_mp_no_leaked_segments_after_run():
    engine, run_id, leaked = _leak_check_run()
    _assert_engaged(engine)
    assert engine._arena is None
    assert leaked == []


def test_mp_no_leaked_segments_after_worker_crash():
    engine, run_id, leaked = _leak_check_run(kill=True)
    # The crash aborted the multiprocess attempt; the fallback finished
    # the run and the arena sweep still reclaimed every segment --
    # including those created by the dead worker.
    assert engine.mp_fallback_reason is not None
    assert "died" in engine.mp_fallback_reason
    assert leaked == []


def test_mp_arena_released_even_when_constructed_unused():
    eng = MpShardedEngine(nshards=4, lookahead=1.0)
    from repro.linalg import shm

    run_id = eng._arena.run_id
    arr = shm.alloc_array((64, 64))  # goes through the active arena
    arr[0, 0] = 7.0
    eng._release_arena()
    assert shm.active_arena() is None
    assert shm.list_run_segments(run_id) == []
    assert arr[0, 0] == 7.0  # live views survive the unlink


def test_mp_unreleased_arena_swept_at_interpreter_exit():
    # A driver that constructs an engine, allocates tiles, and then dies
    # before run() (e.g. an exception while building the graph) never
    # reaches the finally-release.  Segments are untracked from the
    # resource tracker by design, so the atexit sweep is the only thing
    # standing between that script and permanently leaked /dev/shm names.
    import subprocess
    import sys
    from pathlib import Path

    src = Path(__file__).resolve().parent.parent / "src"
    script = (
        "from repro.sim.mpshard import MpShardedEngine\n"
        "from repro.linalg import shm\n"
        "eng = MpShardedEngine(nshards=4, lookahead=1.0)\n"
        "arr = shm.alloc_array((64, 64))\n"
        "assert shm.list_run_segments(eng._arena.run_id), 'no segment made'\n"
        "print(eng._arena.run_id)\n"
        "raise SystemExit(0)  # exit without ever calling run()\n"
    )
    env = dict(os.environ, PYTHONPATH=str(src))
    proc = subprocess.run([sys.executable, "-c", script],
                          capture_output=True, text=True, env=env,
                          timeout=60)
    assert proc.returncode == 0, proc.stderr[-2000:]
    run_id = proc.stdout.strip().splitlines()[-1]

    from repro.linalg import shm

    assert shm.list_run_segments(run_id) == []
