"""Tests for execution tracing."""

import pytest

from repro.sim.trace import Tracer


def make_tracer():
    tr = Tracer()
    tr.record_task("A", 1, rank=0, worker=0, start=0.0, end=1.0)
    tr.record_task("A", 2, rank=0, worker=1, start=0.5, end=2.0)
    tr.record_task("B", 1, rank=1, worker=0, start=1.0, end=1.5)
    tr.record_message(0, 1, 1000, sent=0.2, arrived=0.4, tag="x")
    return tr


def test_makespan():
    assert make_tracer().makespan() == 2.0


def test_empty_tracer():
    tr = Tracer()
    assert tr.makespan() == 0.0
    assert tr.load_imbalance() == 1.0
    assert tr.total_bytes() == 0
    assert tr.gantt() == []
    assert tr.critical_path_lower_bound() == 0.0
    assert tr.overlap_histogram() == []


def test_busy_time_by_rank():
    busy = make_tracer().busy_time_by_rank()
    assert busy[0] == pytest.approx(2.5)
    assert busy[1] == pytest.approx(0.5)


def test_task_counts():
    assert make_tracer().task_counts() == {"A": 2, "B": 1}


def test_load_imbalance():
    tr = make_tracer()
    # max 2.5, mean 1.5
    assert tr.load_imbalance() == pytest.approx(2.5 / 1.5)


def test_disabled_tracer_records_nothing():
    tr = Tracer(enabled=False)
    tr.record_task("A", 1, 0, 0, 0.0, 1.0)
    tr.record_message(0, 1, 10, 0.0, 0.1)
    assert tr.tasks == [] and tr.messages == []


def test_gantt_sorted():
    rows = make_tracer().gantt()
    keys = [(r["rank"], r["worker"], r["start"]) for r in rows]
    assert keys == sorted(keys)


def test_total_bytes():
    assert make_tracer().total_bytes() == 1000


def test_critical_path_lower_bound():
    assert make_tracer().critical_path_lower_bound() == pytest.approx(1.5)


def test_overlap_histogram():
    hist = make_tracer().overlap_histogram(bins=4)
    assert len(hist) == 4
    # near t=0.75 two tasks run
    t, running = hist[1]
    assert running == 2
