"""Exporters: Chrome trace schema validity, JSONL round-trip, counters JSON."""

import json

import numpy as np
import pytest

from repro.apps.cholesky import cholesky_ttg
from repro.linalg import BlockCyclicDistribution, TiledMatrix, spd_matrix
from repro.runtime import ParsecBackend
from repro.sim.cluster import Cluster, HAWK
from repro.telemetry.events import EventBus, Telemetry
from repro.telemetry.export import (
    counters_payload,
    event_from_json,
    event_to_json,
    read_counters_json,
    read_jsonl,
    to_chrome_events,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_counters_json,
    write_jsonl,
)


@pytest.fixture(scope="module")
def cholesky_telemetry():
    """One instrumented 2-rank Cholesky run (b=64 so splitmd triggers)."""
    n, b, nodes = 256, 64, 2
    a = spd_matrix(n, seed=7)
    A = TiledMatrix.from_dense(
        a, b, BlockCyclicDistribution.for_ranks(nodes), lower_only=True
    )
    tel = Telemetry(nranks=nodes, capacity=None)
    backend = ParsecBackend(Cluster(HAWK, nodes), telemetry=tel)
    res = cholesky_ttg(A, backend)
    L = np.tril(res.L.to_dense())
    assert np.allclose(L, np.linalg.cholesky(a))
    return tel


def test_chrome_trace_is_schema_valid(cholesky_telemetry):
    trace = to_chrome_trace(cholesky_telemetry)
    assert validate_chrome_trace(trace) == []
    assert trace["displayTimeUnit"] == "ms"
    assert len(trace["traceEvents"]) > 0


def test_chrome_trace_has_metadata_and_all_phases(cholesky_telemetry):
    events = to_chrome_events(cholesky_telemetry)
    phases = {e["ph"] for e in events}
    assert {"M", "X", "i", "C"} <= phases
    names = {e["args"]["name"] for e in events if e["ph"] == "M"
             and e["name"] == "process_name"}
    assert names == {"rank 0", "rank 1"}
    thread_names = {e["args"]["name"] for e in events if e["ph"] == "M"
                    and e["name"] == "thread_name"}
    assert "am-server" in thread_names
    assert any(n.startswith("worker") for n in thread_names)


def test_splitmd_phases_exported_as_flow_arrows(cholesky_telemetry):
    events = to_chrome_events(cholesky_telemetry)
    spans = [e for e in events if e["ph"] == "X"]
    metas = [e for e in spans if e["name"].startswith("splitmd:meta:")]
    rmas = [e for e in spans if e["name"].startswith("splitmd:rma:")]
    assert metas and rmas
    flow_phases = [e["ph"] for e in events if e["name"] == "flow"]
    assert "s" in flow_phases and "f" in flow_phases
    # Each flow chain carries an int id; terminating arrows bind at end.
    finals = [e for e in events if e["ph"] == "f"]
    assert all(isinstance(e["id"], int) and e["bp"] == "e" for e in finals)


def test_write_chrome_trace_file_round_trip(cholesky_telemetry, tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), cholesky_telemetry)
    with open(path) as fh:
        assert validate_chrome_trace(json.load(fh)) == []


def test_validator_rejects_garbage():
    assert validate_chrome_trace(42) != []
    assert validate_chrome_trace({"nope": []}) != []
    bad = [
        {"ph": "X", "pid": 0, "tid": 0, "ts": 0.0, "dur": 1.0},       # no name
        {"name": "x", "ph": "?", "pid": 0, "tid": 0, "ts": 0.0},      # bad ph
        {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": -1, "dur": 1},
        {"name": "x", "ph": "s", "pid": 0, "tid": 0, "ts": 0.0},      # no id
        {"name": "x", "ph": "C", "pid": 0, "tid": 0, "ts": 0.0,
         "args": {"v": "str"}},
    ]
    problems = validate_chrome_trace(bad)
    assert len(problems) >= 5


def test_jsonl_round_trip(cholesky_telemetry, tmp_path):
    path = tmp_path / "events.jsonl"
    n = write_jsonl(str(path), cholesky_telemetry)
    assert n == len(cholesky_telemetry.bus)
    bus2 = read_jsonl(str(path))
    assert len(bus2) == n
    orig = cholesky_telemetry.bus.events()
    back = bus2.events()
    assert [e.name for e in orig] == [e.name for e in back]
    assert [type(e).__name__ for e in orig] == [type(e).__name__ for e in back]
    # And the re-ingested bus exports an identical (valid) trace.
    assert validate_chrome_trace(to_chrome_trace(bus2)) == []


def test_event_json_codec_all_kinds():
    bus = EventBus(capacity=None)
    s = bus.complete("s", 1, 2, 0.5, 1.5, cat="task", flow=9, args={"k": "v"})
    i = bus.instant("i", 0, cat="dep", src="A")
    c = bus.counter("c", 0, depth=2.0)
    for ev in (s, i, c):
        assert event_from_json(json.loads(json.dumps(event_to_json(ev)))) == ev
    with pytest.raises(ValueError):
        event_from_json({"type": "alien"})
    with pytest.raises(TypeError):
        event_to_json(object())


def test_counters_json_round_trip(cholesky_telemetry, tmp_path):
    path = tmp_path / "counters.json"
    write_counters_json(str(path), cholesky_telemetry, meta={"run": "t"})
    data = read_counters_json(str(path))
    assert data["schema"] == "repro.telemetry/counters-v1"
    assert data["meta"]["run"] == "t"
    counters = data["counters"]
    task_keys = [k for k in counters if k.startswith("tasks{")]
    assert task_keys and all(counters[k]["kind"] == "counter" for k in task_keys)
    payload = counters_payload(cholesky_telemetry)
    assert set(payload["counters"]) == set(counters)


def test_read_counters_json_rejects_other_json(tmp_path):
    p = tmp_path / "x.json"
    p.write_text("[1, 2]")
    with pytest.raises(ValueError):
        read_counters_json(str(p))
