"""Tests for the profiling module (and tracer integration with real runs)."""

import pytest

from repro.apps.cholesky import cholesky_ttg
from repro.linalg import BlockCyclicDistribution, TiledMatrix, spd_matrix
from repro.runtime import ParsecBackend
from repro.sim import Cluster, HAWK, Profile, Tracer


@pytest.fixture(scope="module")
def traced_run():
    tracer = Tracer()
    cluster = Cluster(HAWK, 4)
    a = spd_matrix(96, seed=1)
    A = TiledMatrix.from_dense(a, 16, BlockCyclicDistribution(2, 2),
                               lower_only=True)
    backend = ParsecBackend(cluster, tracer=tracer)
    res = cholesky_ttg(A, backend)
    return Profile(tracer, cluster), res


def test_profile_template_stats(traced_run):
    prof, res = traced_run
    by_name = {s.name: s for s in prof.by_template()}
    for name, count in res.task_counts.items():
        assert by_name[name].count == count
    gemm = by_name["GEMM"]
    assert gemm.min_time <= gemm.mean_time <= gemm.max_time
    assert gemm.total_time == pytest.approx(gemm.mean_time * gemm.count)


def test_profile_sorted_by_total_time(traced_run):
    prof, _ = traced_run
    totals = [s.total_time for s in prof.by_template()]
    assert totals == sorted(totals, reverse=True)


def test_profile_rank_stats(traced_run):
    prof, res = traced_run
    ranks = prof.by_rank()
    assert len(ranks) == 4
    assert sum(r.tasks for r in ranks) == sum(res.task_counts.values())
    for r in ranks:
        assert 0.0 <= r.utilization <= 1.0


def test_parallel_efficiency_bounds(traced_run):
    prof, _ = traced_run
    assert 0.0 < prof.parallel_efficiency() <= 1.0


def test_comm_summary(traced_run):
    prof, _ = traced_run
    comm = prof.comm_summary()
    assert comm["messages"] > 0
    assert comm["bytes"] > 0
    assert comm["mean_latency"] > 0


def test_report_renders(traced_run):
    prof, _ = traced_run
    rep = prof.report()
    assert "makespan" in rep
    assert "GEMM" in rep
    assert "messages" in rep


def test_profile_empty_trace():
    prof = Profile(Tracer(), Cluster(HAWK, 2))
    assert prof.parallel_efficiency() == 0.0
    assert prof.by_template() == []
    assert all(r.utilization == 0.0 for r in prof.by_rank())
    assert "makespan" in prof.report()
