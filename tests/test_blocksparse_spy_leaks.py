"""Tests for the spy plot and the RMA data-life-cycle leak check."""

import pytest

from repro.comm.rma import RmaError
from repro.linalg import BlockSparseMatrix, IrregularTiling, yukawa_blocksparse
from repro.linalg.tile import MatrixTile
from repro.runtime import ParsecBackend
from repro.sim.cluster import Cluster, HAWK


def test_spy_renders_density_levels():
    t = IrregularTiling([4] * 8)
    m = BlockSparseMatrix(t, t)
    for i in range(8):
        m.set_block(i, i, MatrixTile.synthetic(4, 4))
    out = m.spy(width=8)
    lines = out.splitlines()
    assert "occupancy 0.12" in lines[0]
    assert len(lines) == 9
    # diagonal marked, off-diagonal blank
    assert lines[1][1] != " "
    assert lines[1][8] == " "


def test_spy_full_matrix_all_dense():
    t = IrregularTiling([4, 4])
    m = BlockSparseMatrix(t, t)
    for i in range(2):
        for j in range(2):
            m.set_block(i, j, MatrixTile.synthetic(4, 4))
    out = m.spy(width=2)
    assert "#" in out and " |" not in out.splitlines()[1]


def test_spy_yukawa_banded():
    m = yukawa_blocksparse(120, target_tile=48, decay_length=1.0, seed=3,
                           synthetic=True)
    out = m.spy(width=30)
    assert out.count("\n") >= 10


def test_rma_live_handles_counts():
    from repro.comm.endpoint import CommEngine
    from repro.comm.rma import RmaWindow

    comm = CommEngine(Cluster(HAWK, 2))
    win = RmaWindow(comm)
    assert win.live_handles() == 0
    h = win.register(0, None, 100)
    assert win.live_handles() == 1
    win.release(h)
    assert win.live_handles() == 0


def test_backend_detects_data_lifecycle_leak():
    be = ParsecBackend(Cluster(HAWK, 2))
    # Register a region that is never released: run() must flag it.
    be.rma.register(0, None, 1024)
    with pytest.raises(RmaError, match="never released"):
        be.run()


def test_clean_run_has_no_leaks():
    from repro.apps.cholesky import cholesky_ttg
    from repro.linalg import BlockCyclicDistribution, TiledMatrix

    # Large synthetic tiles force splitmd transfers; all must be released.
    a = TiledMatrix(2048, 256, BlockCyclicDistribution.for_ranks(4),
                    synthetic=True)
    be = ParsecBackend(Cluster(HAWK, 4))
    cholesky_ttg(a, be)
    assert be.rma.live_handles() == 0
    assert be.stats.rma_transfers == be.stats.splitmd_releases > 0
