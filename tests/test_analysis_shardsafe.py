"""Tests for the static shard-safety pass (SHD rules) and its waivers."""

import textwrap
import threading

import pytest

from repro import core as ttg
from repro.analysis.shardsafe import (
    DEFAULT_AUDIT_MODULES,
    audit_runtime_modules,
    expired_waivers,
    iter_graph_callables,
    scan_shard_paths,
    shardsafe_graph,
    suppressed_findings,
)
from repro.core.exceptions import GraphConstructionError
from repro.runtime import ParsecBackend
from repro.sim import Cluster, HAWK
from repro.telemetry.events import Telemetry

# Module global the unsafe fixture's sink assigns to (SHD005).
_SINK_TOTAL = 0


def build_unsafe_graph():
    """One graph exhibiting every capture-level SHD defect.

    Deliberately the acceptance-criteria fixture: an unpicklable captured
    lock (SHD001), a live runtime object (SHD002), a nested lambda
    (SHD003), a mutated free variable (SHD004), a module-global write
    (SHD005), mutable containers captured by a body (SHD006) and by a
    map (SHD007).
    """
    lock = threading.Lock()
    tel = Telemetry(nranks=1)
    tiles = {}
    counter = 0
    bump = lambda x: x + 1  # noqa: E731 -- the point is the lambda capture

    e = ttg.Edge("x", key_type=int, value_type=int)

    def gen(key, outs):
        nonlocal counter
        counter += 1                       # SHD004
        with lock:                         # SHD001
            outs.send(0, key, bump(key))   # SHD003

    def sink(key, v, outs):
        global _SINK_TOTAL
        _SINK_TOTAL = v                    # SHD005
        tiles[key] = (v, tel.bus)          # SHD002 + SHD006

    gen_tt = ttg.make_tt(gen, [], [e], name="GEN", keymap=lambda k: 0)
    sink_tt = ttg.make_tt(
        sink, [e], [], name="SINK", keymap=lambda k: 0,
        priomap=lambda k: len(tiles),      # SHD007
    )
    graph = ttg.TaskGraph([gen_tt, sink_tt], name="unsafe")
    return graph, gen_tt, sink_tt


def build_clean_graph():
    e = ttg.Edge("x", key_type=int, value_type=int)

    def gen(key, outs):
        outs.send(0, key, key + 1)

    def sink(key, v, outs):
        pass

    gen_tt = ttg.make_tt(gen, [], [e], name="GEN", keymap=lambda k: 0)
    sink_tt = ttg.make_tt(sink, [e], [], name="SINK", keymap=lambda k: 0)
    return ttg.TaskGraph([gen_tt, sink_tt], name="clean")


def _ids(findings):
    return sorted({f.rule.id for f in findings})


# ------------------------------------------------------------ the SHD rules


def test_unsafe_fixture_triggers_every_capture_rule():
    graph, _, _ = build_unsafe_graph()
    findings = shardsafe_graph(graph)
    assert _ids(findings) == [
        "SHD001", "SHD002", "SHD003", "SHD004", "SHD005", "SHD006", "SHD007",
    ]


def test_findings_carry_callable_site_locations():
    graph, _, _ = build_unsafe_graph()
    by_rule = {f.rule.id: f for f in shardsafe_graph(graph)}
    assert by_rule["SHD001"].location == "unsafe/GEN.body"
    assert by_rule["SHD004"].location == "unsafe/GEN.body"
    assert by_rule["SHD005"].location == "unsafe/SINK.body"
    assert by_rule["SHD007"].location == "unsafe/SINK.priomap"
    assert "lock" in by_rule["SHD001"].message
    assert "counter" in by_rule["SHD004"].message
    assert "_SINK_TOTAL" in by_rule["SHD005"].message


def test_clean_graph_has_no_findings():
    assert shardsafe_graph(build_clean_graph()) == []


def test_severities_split_hard_vs_todo():
    graph, _, _ = build_unsafe_graph()
    sev = {f.rule.id: f.rule.severity for f in shardsafe_graph(graph)}
    # Process-boundary violations are errors; idiomatic closure capture
    # of application data is a warning (the multiprocess TODO list).
    for rid in ("SHD001", "SHD002", "SHD004"):
        assert sev[rid] == "error", rid
    for rid in ("SHD003", "SHD005", "SHD006", "SHD007"):
        assert sev[rid] == "warning", rid


def test_iter_graph_callables_covers_maps():
    graph, _, _ = build_unsafe_graph()
    roles = {(s.tt.name, s.role) for s in iter_graph_callables(graph)}
    assert ("GEN", "body") in roles
    assert ("GEN", "keymap") in roles
    assert ("SINK", "priomap") in roles


# ----------------------------------------------------------------- waivers


def test_template_waiver_suppresses_rule():
    graph, _, sink_tt = build_unsafe_graph()
    sink_tt.lint_waive("SHD006")
    effective = shardsafe_graph(graph)
    assert "SHD006" not in _ids(effective)
    # GEN is untouched by SINK's waiver.
    assert "SHD001" in _ids(effective)

    raw = shardsafe_graph(graph, honor_waivers=False)
    assert "SHD006" in _ids(raw)
    suppressed = suppressed_findings(effective, raw)
    assert _ids(suppressed) == ["SHD006"]


def test_call_level_ignore():
    graph, _, _ = build_unsafe_graph()
    all_ids = tuple(_ids(shardsafe_graph(graph)))
    assert shardsafe_graph(graph, ignore=all_ids) == []
    partial = shardsafe_graph(graph, ignore=("SHD001", "SHD004"))
    assert "SHD001" not in _ids(partial)
    assert "SHD002" in _ids(partial)


def test_waiver_with_future_expiry_is_honored():
    graph, _, sink_tt = build_unsafe_graph()
    sink_tt.lint_waive("SHD002", expires="2099-01-01")
    assert "SHD002" not in _ids(shardsafe_graph(graph))
    assert sink_tt.expired_waivers() == ()
    assert expired_waivers(graph) == []


def test_expired_waiver_fires_hard_again():
    graph, _, sink_tt = build_unsafe_graph()
    sink_tt.lint_waive("SHD005", expires="2001-01-01")
    # Past its date the waiver stops suppressing...
    assert "SHD005" in _ids(shardsafe_graph(graph))
    # ...and is reported as expired at both granularities.
    assert "SHD005" in sink_tt.expired_waivers()
    assert ("SINK", "SHD005") in expired_waivers(graph)


# -------------------------------------------- SHD008: scheduling path scan


def _scan_one(source):
    return scan_shard_paths([("mod", textwrap.dedent(source))])


def test_scan_flags_unranked_schedule_call():
    findings = _scan_one(
        """
        def fire(engine, ev, cb):
            engine.schedule(ev, cb)
        """
    )
    assert _ids(findings) == ["SHD008"]
    assert findings[0].location == "mod:3"
    assert "rank=" in findings[0].message


def test_scan_accepts_rank_keyword():
    assert _scan_one(
        """
        def fire(engine, ev, cb, r):
            engine.schedule(ev, cb, rank=r)
        """
    ) == []


def test_scan_accepts_unranked_ok_annotation():
    same_line = """
        def fire(engine, ev, cb):
            engine.post_local(ev, cb)  # shard-safe: unranked-ok
        """
    prev_line = """
        def fire(engine, ev, cb):
            # shard-safe: unranked-ok
            engine.post_local(ev, cb)
        """
    assert _scan_one(same_line) == []
    assert _scan_one(prev_line) == []


def test_scan_ignores_unrelated_calls_and_honors_ignore():
    assert _scan_one("def f(x):\n    return sorted(x)\n") == []
    bad = [("mod", "def f(e, ev, cb):\n    e.schedule_batch(ev, cb)\n")]
    assert scan_shard_paths(bad, ignore=("SHD008",)) == []


def test_scan_reports_unparseable_source():
    findings = scan_shard_paths([("mod", "def broken(:\n")])
    assert _ids(findings) == ["SHD008"]
    assert "cannot parse" in findings[0].message


def test_runtime_self_audit_is_clean():
    # The repo's own send/fire paths must stay rank-keyed (or carry an
    # explicit unranked-ok acknowledgment) -- the SHD008 contract the
    # sharded-engine docstring promises.
    assert audit_runtime_modules() == []
    assert "repro.sim.sharded" in DEFAULT_AUDIT_MODULES


# ------------------------------------------------- executable integration


def _backend(nranks=2):
    return ParsecBackend(Cluster(HAWK, nranks))


def test_strict_executable_raises_on_shd_errors():
    graph, _, _ = build_unsafe_graph()
    with pytest.raises(GraphConstructionError) as exc:
        graph.executable(_backend(), shardsafe=True, strict=True)
    assert str(exc.value.rule).startswith("SHD")


def test_default_executable_warns_and_keeps_findings():
    graph, _, _ = build_unsafe_graph()
    with pytest.warns(RuntimeWarning, match="TTG lint: SHD"):
        ex = graph.executable(_backend(), shardsafe=True)
    assert "SHD001" in _ids(ex.findings)
    ex.invoke(graph.tts[0], 0)
    ex.fence()  # the graph still runs in-process


def test_executable_without_shardsafe_skips_pass():
    graph, _, _ = build_unsafe_graph()
    ex = graph.executable(_backend())
    assert not any(f.rule.id.startswith("SHD") for f in ex.findings)


def test_validate_shardsafe_reports_strings():
    graph, _, _ = build_unsafe_graph()
    plain = graph.validate(nranks=2)
    sharded = graph.validate(nranks=2, shardsafe=True)
    assert not any("SHD" in s for s in plain)
    assert any("SHD001" in s for s in sharded)
