"""Documentation consistency: the docs must reference real artifacts."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def test_design_mentions_every_figure_bench():
    design = (ROOT / "DESIGN.md").read_text()
    for bench in (ROOT / "benchmarks").glob("test_*.py"):
        stem = bench.name
        # fig13 benches are referenced with ::test ids; others by filename
        assert stem in design or stem.replace(".py", "") in design, stem


def test_experiments_covers_every_paper_item():
    exp = (ROOT / "EXPERIMENTS.md").read_text()
    for item in ("Table I", "Fig 5", "Fig 6", "Fig 8", "Fig 9", "Fig 11",
                 "Fig 12", "Fig 13a/b", "Ablations"):
        assert item in exp, item


def test_readme_architecture_mentions_every_package():
    readme = (ROOT / "README.md").read_text()
    src = ROOT / "src" / "repro"
    for pkg in src.iterdir():
        if pkg.is_dir() and (pkg / "__init__.py").exists():
            assert f"repro.{pkg.name}" in readme, pkg.name


def test_docs_reference_existing_modules():
    """Module paths mentioned in the guides must exist."""
    text = (ROOT / "docs" / "model.md").read_text() + (
        ROOT / "docs" / "simulator.md"
    ).read_text()
    for mod in re.findall(r"`repro\.([a-z_.]+)`", text):
        parts = mod.split(".")
        path = ROOT / "src" / "repro"
        for p in parts:
            nxt_dir = path / p
            nxt_file = path / f"{p}.py"
            assert nxt_dir.is_dir() or nxt_file.exists(), mod
            path = nxt_dir
        # attribute references like repro.sim.profile are fine as files


def test_design_no_title_collision_note():
    design = (ROOT / "DESIGN.md").read_text()
    assert "no title collision" in design


def test_changelog_and_contributing_exist():
    assert (ROOT / "CHANGELOG.md").read_text().startswith("# Changelog")
    assert "pytest" in (ROOT / "CONTRIBUTING.md").read_text()
