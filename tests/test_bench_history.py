"""Benchmark history store, robust watchdog statistics, regression CLI."""

import json

import pytest

from repro.bench.__main__ import main as bench_main
from repro.bench.history import (
    BenchHistory,
    BenchRecord,
    SCHEMA,
    SCHEMA_VERSION,
    SeededBlockCyclic,
    check_history,
    classify,
    mad,
    measure_cell,
    measure_matrix,
    measure_potrf,
    median,
    robust_stats,
    run_watchdog,
)
from repro.linalg import BlockCyclicDistribution


def _rec(makespan, baseline=False, seed=0, gflops=100.0, **cfg):
    config = {"n": 1024, "b": 128, **cfg}
    return BenchRecord(app="potrf", config=config, seed=seed,
                       makespan=makespan, gflops=gflops, tasks_total=160,
                       baseline=baseline)


# ----------------------------------------------------------------- records


def test_record_round_trip():
    r = BenchRecord(app="potrf", config={"n": 512}, seed=3, makespan=0.01,
                    gflops=42.0, tasks_total=20,
                    tasks_by_template={"POTRF": 4},
                    bytes_by_protocol={"eager": 1024},
                    critical_path_fraction=0.8, idle_fraction=0.3,
                    counters={"tasks.executed|": 20.0}, git_sha="abc1234",
                    baseline=True)
    again = BenchRecord.from_dict(json.loads(json.dumps(r.as_dict())))
    assert again == r


def test_config_key_is_order_independent():
    a = BenchRecord(app="x", config={"n": 1, "b": 2})
    b = BenchRecord(app="x", config={"b": 2, "n": 1})
    assert a.config_key == b.config_key
    assert BenchRecord(app="x", config={"n": 2, "b": 2}).config_key != a.config_key


def test_history_save_load_round_trip(tmp_path):
    h = BenchHistory("potrf")
    h.append(_rec(0.01, baseline=True))
    h.append(_rec(0.011))
    path = h.save(directory=str(tmp_path))
    assert path.name == "BENCH_potrf.json"
    again = BenchHistory.load(path)
    assert again.app == "potrf"
    assert again.records == h.records


def test_history_append_rejects_wrong_app():
    h = BenchHistory("fw")
    with pytest.raises(ValueError, match="app"):
        h.append(_rec(0.01))


def test_v1_payload_migrates_to_current_schema(tmp_path):
    v1 = {
        "schema": SCHEMA,
        "version": 1,
        "app": "potrf",
        "records": [{
            "app": "potrf", "config": {"n": 1024}, "seed": 0,
            "makespan": 0.01, "gflops": 99.0, "tasks_total": 160,
            "tasks_by_template": {"POTRF": 8},
            "metrics": {"tasks.executed|": 160.0},   # v1 name for counters
            "baseline": True,
        }],
    }
    p = tmp_path / "BENCH_potrf.json"
    p.write_text(json.dumps(v1))
    h = BenchHistory.load(p)
    rec = h.records[0]
    assert rec.counters == {"tasks.executed|": 160.0}
    assert rec.bytes_by_protocol == {}
    assert rec.critical_path_fraction == 0.0
    # Saving rewrites at the current version.
    h.save(p)
    assert json.loads(p.read_text())["version"] == SCHEMA_VERSION


def test_future_schema_version_refused(tmp_path):
    p = tmp_path / "BENCH_potrf.json"
    p.write_text(json.dumps({"schema": SCHEMA, "version": SCHEMA_VERSION + 1,
                             "app": "potrf", "records": []}))
    with pytest.raises(ValueError, match="newer"):
        BenchHistory.load(p)


def test_baseline_window_and_candidates():
    h = BenchHistory("potrf")
    h.append(_rec(0.010, baseline=True, seed=0))
    h.append(_rec(0.011, seed=1))                 # pre-re-baseline candidate
    h.append(_rec(0.0102, baseline=True, seed=2))  # new baseline window
    h.append(_rec(0.012, seed=3))
    h.append(_rec(0.013, seed=4))
    key = h.records[0].config_key
    assert [r.seed for r in h.baselines(key)] == [0, 2]
    assert [r.seed for r in h.candidates(key)] == [3, 4]


# -------------------------------------------------------------- statistics


def test_median_and_mad():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
    assert mad([1.0, 1.0, 1.0]) == 0.0
    assert mad([1.0, 2.0, 3.0]) == 1.0
    m, spread = robust_stats([10.0, 12.0, 11.0])
    assert m == 11.0 and spread == pytest.approx(1.0 * 1.4826)


def test_classify_directions():
    base = [0.010, 0.010, 0.010]
    # 30% slower on a lower-is-better metric: regression.
    assert classify(base, [0.013], 0.10, "lower")[0] == "regressed"
    # 30% faster: improvement.
    assert classify(base, [0.007], 0.10, "lower")[0] == "improved"
    # Within the 10% band: unchanged.
    assert classify(base, [0.0105], 0.10, "lower")[0] == "unchanged"
    # Higher-is-better flips the direction.
    assert classify([100.0] * 3, [70.0], 0.10, "higher")[0] == "regressed"
    assert classify([100.0] * 3, [130.0], 0.10, "higher")[0] == "improved"


def test_classify_wide_baseline_spread_absorbs_shift():
    # MAD-based margin: a noisy baseline tolerates a shift the relative
    # threshold alone would flag.
    noisy = [0.010, 0.014, 0.006]   # MAD = 0.004 -> margin ~ 0.0178
    assert classify(noisy, [0.013], 0.10, "lower")[0] == "unchanged"


def test_classify_window_of_one_is_threshold_only_and_warns():
    # n=1: MAD is degenerately 0.0.  The margin must be the pure
    # threshold term and the verdict must say so.
    status, m_b, spread, m_c, note = classify([0.010], [0.013], 0.10, "lower")
    assert status == "regressed"
    assert spread == 0.0
    assert "small baseline window (n=1" in note
    assert "threshold-only" in note
    # Inside the threshold band: unchanged, same warning.
    status, _, _, _, note = classify([0.010], [0.0105], 0.10, "lower")
    assert status == "unchanged"
    assert "small baseline window" in note


def test_classify_window_of_two_drops_the_spread_term():
    # n=2: MAD is half the range -- not a robust scale.  A wide two-sample
    # spread must NOT absorb a > threshold shift the way a real MAD would.
    base = [0.008, 0.012]   # median 0.010, naive MAD would be 0.002
    status, _, spread, _, note = classify(base, [0.013], 0.10, "lower")
    assert status == "regressed"   # 3*1.4826*0.002 would have absorbed it
    assert spread == 0.0
    assert "small baseline window (n=2" in note


def test_classify_window_of_three_uses_mad_and_does_not_warn():
    base = [0.010, 0.014, 0.006]
    status, _, spread, _, note = classify(base, [0.013], 0.10, "lower")
    assert status == "unchanged"   # the MAD margin absorbs the shift
    assert spread > 0.0
    assert note == ""


def test_small_window_note_surfaces_in_verdict_row():
    h = BenchHistory("potrf")
    h.append(_rec(0.010, baseline=True, seed=0))   # one-sample baseline
    h.append(_rec(0.013, seed=9))
    rep = check_history(h)
    rows = [v for v in rep.verdicts if v.metric == "makespan"]
    assert rows and "small baseline window" in rows[0].note
    assert "small baseline window" in rows[0].row()
    assert "small baseline window" in rep.format()


def test_check_history_flags_injected_regression():
    h = BenchHistory("potrf")
    for seed in (0, 1, 2):
        h.append(_rec(0.010, baseline=True, seed=seed))
    ok = check_history(h)
    assert ok.ok and not ok.regressions

    h.append(_rec(0.012, seed=9))   # +20% makespan candidate
    bad = check_history(h)
    assert not bad.ok
    assert any(v.metric == "makespan" for v in bad.regressions)
    assert "regressed" in bad.format()


def test_check_history_no_baseline_is_not_gating():
    h = BenchHistory("potrf")
    h.append(_rec(0.010))           # candidate with no baseline window
    rep = check_history(h)
    assert rep.ok
    assert any(v.status == "no-baseline" for v in rep.verdicts)


# ------------------------------------------------------- seeded placement


def test_seeded_block_cyclic_rotates_ownership():
    base = BlockCyclicDistribution(2, 2)
    s0 = SeededBlockCyclic.for_ranks(4, seed=0)
    s1 = SeededBlockCyclic.for_ranks(4, seed=1)
    coords = [(i, j) for i in range(4) for j in range(4)]
    assert [s0.rank_of(i, j) for i, j in coords] == \
        [base.rank_of(i, j) for i, j in coords]
    assert [s1.rank_of(i, j) for i, j in coords] != \
        [s0.rank_of(i, j) for i, j in coords]
    # Every seed is a relabeling: each rank still owns the same tile count.
    for dist in (s0, s1):
        owners = [dist.rank_of(i, j) for i, j in coords]
        assert sorted(owners.count(r) for r in range(4)) == [4, 4, 4, 4]


def test_measure_potrf_fills_observability_fields():
    rec = measure_potrf(seed=0)
    assert rec.app == "potrf" and rec.backend == "parsec"
    assert rec.makespan > 0 and rec.gflops > 0 and rec.tasks_total > 0
    assert rec.tasks_by_template and sum(rec.tasks_by_template.values()) == rec.tasks_total
    assert 0 < rec.critical_path_fraction <= 1.0
    assert 0 <= rec.idle_fraction < 1.0
    assert rec.counters


def test_seed_sweep_produces_a_distribution():
    makespans = {round(measure_potrf(seed=s).makespan, 9) for s in (0, 1, 2)}
    assert len(makespans) > 1


# ---------------------------------------------------------------- watchdog


def test_run_watchdog_update_then_check(tmp_path):
    d = str(tmp_path)
    reports, written = run_watchdog(d, apps=("potrf",), seeds=(0, 1),
                                    update_baseline=True)
    assert [p.name for p in written] == ["BENCH_potrf.json"]
    assert all(r.ok for r in reports)

    reports, written = run_watchdog(d, apps=("potrf",), seeds=(0, 1))
    assert not written                      # check-only: nothing recorded
    assert all(r.ok for r in reports)       # deterministic: identical reruns


def test_cli_check_regressions_passes_then_fails_on_injection(tmp_path, capsys):
    d = str(tmp_path)
    assert bench_main(["--update-baseline", "--history-dir", d,
                       "--apps", "potrf", "--seeds", "0,1"]) == 0
    assert bench_main(["--check-regressions", "--history-dir", d,
                       "--apps", "potrf", "--seeds", "0,1"]) == 0
    assert "no regressions" in capsys.readouterr().out

    # Inject a +20% makespan / -20% gflops run, then judge the stored
    # trailing candidates alone (--no-measure): the gate must trip.
    path = BenchHistory.path_for("potrf", d)
    h = BenchHistory.load(path)
    slow = BenchRecord.from_dict(h.records[-1].as_dict())
    slow.makespan *= 1.2
    slow.gflops /= 1.2
    slow.baseline = False
    slow.seed = 99
    h.append(slow)
    h.save(path)

    code = bench_main(["--check-regressions", "--no-measure",
                       "--history-dir", d, "--apps", "potrf"])
    captured = capsys.readouterr()
    assert code == 1
    assert "REGRESSION" in captured.err
    assert "!!" in captured.out              # regression marker rows


def test_cli_requires_experiment_or_watchdog_flag(capsys):
    with pytest.raises(SystemExit):
        bench_main([])


# -------------------------------------------------------------- schema v3


def test_v2_payload_migrates_to_current(tmp_path):
    v2 = {
        "schema": SCHEMA,
        "version": 2,
        "app": "potrf",
        "records": [{
            "app": "potrf", "config": {"n": 1024}, "seed": 0,
            "makespan": 0.01, "gflops": 99.0, "tasks_total": 160,
            "tasks_by_template": {"POTRF": 8},
            "bytes_by_protocol": {"eager": 64},
            "critical_path_fraction": 0.5, "idle_fraction": 0.2,
            "counters": {}, "baseline": True,
        }],
    }
    p = tmp_path / "BENCH_potrf.json"
    p.write_text(json.dumps(v2))
    h = BenchHistory.load(p)
    rec = h.records[0]
    # Pre-v3 runs were all sequential and did not time the host.
    assert rec.host_seconds == 0.0
    assert rec.engine == "seq"
    # Pre-v4 runs carried no cost perturbations.
    assert rec.cost_overrides == {}
    h.save(p)
    assert json.loads(p.read_text())["version"] == SCHEMA_VERSION == 4


def test_v3_payload_migrates_to_v4(tmp_path):
    v3 = {
        "schema": SCHEMA,
        "version": 3,
        "app": "potrf",
        "records": [{
            "app": "potrf", "config": {"n": 1024}, "seed": 0,
            "makespan": 0.01, "gflops": 99.0, "tasks_total": 160,
            "tasks_by_template": {"POTRF": 8},
            "bytes_by_protocol": {"eager": 64},
            "critical_path_fraction": 0.5, "idle_fraction": 0.2,
            "counters": {}, "baseline": True,
            "engine": "sharded", "host_seconds": 1.25,
        }],
    }
    p = tmp_path / "BENCH_potrf.json"
    p.write_text(json.dumps(v3))
    h = BenchHistory.load(p)
    rec = h.records[0]
    assert rec.engine == "sharded" and rec.host_seconds == 1.25
    assert rec.cost_overrides == {}
    h.save(p)
    assert json.loads(p.read_text())["version"] == SCHEMA_VERSION == 4


def test_engine_and_host_seconds_excluded_from_config_key():
    a = _rec(0.01)
    b = _rec(0.01)
    b.engine = "sharded"
    b.host_seconds = 3.5
    # Virtual metrics are engine-invariant (parity suite), so records from
    # any engine stay comparable against the stored baselines.
    assert a.config_key == b.config_key


def test_dotted_metric_indexes_dict_fields():
    r = _rec(0.01)
    r.bytes_by_protocol = {"splitmd": 4096.0, "eager": 128.0}
    assert r.metric("bytes_by_protocol.splitmd") == 4096.0
    assert r.metric("bytes_by_protocol.eager") == 128.0
    assert r.metric("bytes_by_protocol.rendezvous") == 0.0   # missing -> 0
    assert r.metric("makespan") == 0.01


def test_protocol_gate_catches_splitmd_to_eager_fallback():
    # The failure mode: a serialization regression silently routes large
    # payloads through the eager protocol.  Makespan barely moves, but the
    # protocol split must trip the gate.
    h = BenchHistory("potrf")
    for seed in (0, 1, 2):
        r = _rec(0.010, baseline=True, seed=seed)
        r.bytes_by_protocol = {"splitmd": 10000.0, "eager": 500.0}
        h.append(r)
    bad = _rec(0.010, seed=9)
    bad.bytes_by_protocol = {"splitmd": 0.0, "eager": 10500.0}
    h.append(bad)
    rep = check_history(h)
    assert not rep.ok
    flagged = {v.metric for v in rep.regressions}
    assert "bytes_by_protocol.splitmd" in flagged
    assert "bytes_by_protocol.eager" in flagged
    assert "makespan" not in flagged


def test_host_seconds_verdict_reported_but_not_gating():
    h = BenchHistory("potrf")
    for seed in (0, 1, 2):
        r = _rec(0.010, baseline=True, seed=seed)
        r.host_seconds = 2.0
        h.append(r)
    fast = _rec(0.010, seed=9)
    fast.host_seconds = 1.0   # 2x host speedup, same virtual results
    h.append(fast)
    rep = check_history(h)
    assert rep.ok                                   # never gates
    hv = [v for v in rep.verdicts if v.metric == "host_seconds"]
    assert len(hv) == 1
    assert hv[0].status == "improved" and not hv[0].gating


def test_prune_keeps_recent_per_group():
    h = BenchHistory("potrf")
    h.append(_rec(0.010, baseline=True, seed=0))
    for seed in range(1, 7):
        h.append(_rec(0.011, seed=seed))
    # A second config group must be pruned independently.
    for seed in range(3):
        h.append(_rec(0.02, seed=seed, n=2048))
    dropped = h.prune(2)
    assert dropped == 5                    # 6 -> 2 and 3 -> 2 per group
    key = _rec(0.01).config_key
    assert [r.seed for r in h.group(key)] == [0, 5, 6]
    assert h.records[0].baseline           # baselines kept unconditionally
    assert len(h.group(_rec(0.02, n=2048).config_key)) == 2


def test_prune_drop_old_baselines_keeps_active_sweep():
    h = BenchHistory("potrf")
    h.append(_rec(0.010, baseline=True, seed=0))   # superseded sweep
    h.append(_rec(0.011, seed=1))
    h.append(_rec(0.0102, baseline=True, seed=2))  # active sweep
    h.append(_rec(0.0101, baseline=True, seed=3))  # same sweep (contiguous)
    h.append(_rec(0.012, seed=4))
    dropped = h.prune(10, keep_baselines=False)
    assert dropped == 1
    assert [r.seed for r in h.records] == [1, 2, 3, 4]


def test_prune_zero_keep_and_negative(tmp_path):
    h = BenchHistory("potrf")
    h.append(_rec(0.010, baseline=True, seed=0))
    h.append(_rec(0.011, seed=1))
    with pytest.raises(ValueError):
        h.prune(-1)
    assert h.prune(0) == 1
    assert [r.seed for r in h.records] == [0]


def test_cli_prune_compacts_files(tmp_path, capsys):
    d = str(tmp_path)
    h = BenchHistory("potrf")
    h.append(_rec(0.010, baseline=True, seed=0))
    for seed in range(1, 6):
        h.append(_rec(0.011, seed=seed))
    h.save(directory=d)
    assert bench_main(["prune", "--history-dir", d, "--apps", "potrf",
                       "--keep", "2"]) == 0
    out = capsys.readouterr().out
    assert "dropped 3" in out
    assert len(BenchHistory.load(BenchHistory.path_for("potrf", d))) == 3


# --------------------------------------------------- measurement matrix


def test_measure_cell_matches_direct_measurement():
    direct = measure_potrf(0).as_dict()
    via_cell = measure_cell({"app": "potrf", "seed": 0}).as_dict()
    for skip in ("host_seconds", "git_sha"):
        direct.pop(skip), via_cell.pop(skip)
    assert via_cell == direct
    with pytest.raises(ValueError, match="unknown watchdog app"):
        measure_cell({"app": "nope", "seed": 0})


def test_measure_matrix_records_engine_field():
    out = measure_matrix(apps=("fw",), seeds=(0,), engine="sharded")
    assert list(out) == ["fw"]
    rec = out["fw"][0]
    assert rec.engine == "sharded"
    assert rec.host_seconds > 0


def test_measure_bspmm_and_mra_fill_records():
    from repro.bench.history import MEASUREMENTS, measure_bspmm, measure_mra

    assert set(MEASUREMENTS) == {"potrf", "fw", "bspmm", "mra"}
    b = measure_bspmm(0)
    assert b.app == "bspmm" and b.makespan > 0 and b.tasks_total > 0
    m = measure_mra(0)
    assert m.app == "mra" and m.makespan > 0 and m.tasks_total > 0
    # Sharded parity on the new apps (virtual fields identical).
    for fn, rec in ((measure_bspmm, b), (measure_mra, m)):
        d1, d2 = rec.as_dict(), fn(0, engine="sharded").as_dict()
        for skip in ("host_seconds", "engine", "git_sha"):
            d1.pop(skip), d2.pop(skip)
        assert d2 == d1
