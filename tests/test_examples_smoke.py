"""Smoke tests: the fast examples must run clean end-to-end.

The slower examples (bspmm, mra, heterogeneous sweeps) are exercised by
their own application tests; here we pin the quick ones that double as
documentation.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST = [
    "quickstart.py",
    "sending_modes.py",
    "spmd_pingpong.py",
    "ptg_wavefront.py",
]


@pytest.mark.parametrize("script", FAST)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "OK" in proc.stdout


def test_examples_directory_documented():
    readme = (EXAMPLES / "README.md").read_text()
    for script in EXAMPLES.glob("*.py"):
        assert script.name in readme, f"{script.name} missing from examples/README.md"
