"""Single-file HTML report: Gantt SVG, critical-path highlight, tables."""

import json
import re

import pytest

from repro.apps.cholesky import cholesky_ttg
from repro.bench.history import BenchHistory, BenchRecord
from repro.linalg import BlockCyclicDistribution, TiledMatrix, spd_matrix
from repro.runtime import ParsecBackend
from repro.sim.cluster import Cluster, HAWK
from repro.telemetry import Telemetry
from repro.telemetry.cli import main as telemetry_main
from repro.telemetry.export import write_jsonl
from repro.telemetry.report_html import (
    engine_health,
    gantt_svg,
    gpu_lane_summary,
    load_histories,
    protocol_bytes,
    render_report,
    sparkline_svg,
    trend_svg,
    write_report_html,
)


@pytest.fixture(scope="module")
def cholesky_run():
    """One telemetered 2-rank Cholesky run."""
    a = spd_matrix(256, seed=11)
    m = TiledMatrix.from_dense(a, 64, BlockCyclicDistribution(2, 1))
    tel = Telemetry(capacity=None)
    backend = ParsecBackend(Cluster(HAWK.with_workers(2), 2), telemetry=tel)
    cholesky_ttg(m, backend)
    return tel


def test_report_is_self_contained_html(cholesky_run):
    html = render_report(cholesky_run, title="cholesky run")
    assert html.startswith("<!DOCTYPE html>")
    assert "<svg" in html and "cholesky run" in html
    # No external fetches of any kind: the file must open offline.
    assert not re.search(r'(src|href)\s*=\s*"https?://', html)
    assert "<script" not in html.lower()


def test_report_gantt_highlights_critical_path(cholesky_run):
    html = render_report(cholesky_run)
    assert 'class="crit"' in html
    # Every recorded template appears in the per-template table.
    for template in ("POTRF", "TRSM", "SYRK", "GEMM"):
        assert template in html


def test_report_sections_present(cholesky_run):
    html = render_report(cholesky_run)
    for section in ("Timeline", "Critical path", "Per-template durations",
                    "Idle breakdown", "Comm / protocol byte split"):
        assert section in html, section


def test_gantt_svg_lane_labels_and_hover(cholesky_run):
    svg = gantt_svg(cholesky_run, crit_labels=set())
    assert svg.count("<svg") == 1
    assert "r0 w0" in svg            # worker lane label
    assert "<title>" in svg          # hover tooltips
    assert "am-server" in svg        # comm lane label


def test_protocol_bytes_split(cholesky_run):
    split = protocol_bytes(cholesky_run)
    assert split, "2-rank run must move bytes"
    assert all(isinstance(v, int) and v > 0 for v in split.values())


def test_sparkline_and_empty_inputs():
    assert "<svg" in sparkline_svg([(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)])
    assert sparkline_svg([]) == ""


def test_trend_chart_from_history(tmp_path):
    h = BenchHistory("potrf")
    for seed, ms in enumerate((0.010, 0.011, 0.0105)):
        h.append(BenchRecord(app="potrf", config={"n": 1024}, seed=seed,
                             makespan=ms, gflops=100.0, baseline=(seed == 0)))
    svg = trend_svg(h)
    assert "<svg" in svg and "potrf" not in svg.lower().replace("potrf", "", 1)

    h.save(directory=str(tmp_path))
    histories = load_histories(str(tmp_path))
    assert len(histories) == 1 and histories[0].app == "potrf"


def test_report_embeds_history_trends(cholesky_run, tmp_path):
    h = BenchHistory("potrf")
    h.append(BenchRecord(app="potrf", config={"n": 1024}, makespan=0.01,
                         gflops=100.0, baseline=True))
    h.save(directory=str(tmp_path))
    html = render_report(cholesky_run, histories=load_histories(str(tmp_path)))
    assert "Benchmark history" in html
    assert "<b>potrf</b> makespan" in html


def test_load_histories_skips_corrupt_files(tmp_path):
    (tmp_path / "BENCH_bad.json").write_text("{not json")
    (tmp_path / "BENCH_other.json").write_text(json.dumps({"schema": "nope"}))
    assert load_histories(str(tmp_path)) == []


def test_write_report_html_and_cli(cholesky_run, tmp_path, capsys):
    log = tmp_path / "run.jsonl"
    write_jsonl(str(log), cholesky_run)

    out = tmp_path / "report.html"
    nbytes = write_report_html(str(out), cholesky_run)
    assert nbytes == out.stat().st_size > 1000

    # Same through the CLI, reading the JSONL log back.
    out2 = tmp_path / "report2.html"
    code = telemetry_main(["report-html", str(log), "-o", str(out2),
                           "--title", "cli report"])
    assert code == 0
    html = out2.read_text()
    assert "cli report" in html and 'class="crit"' in html
    assert not re.search(r'(src|href)\s*=\s*"https?://', html)


@pytest.fixture(scope="module")
def gpu_run():
    """A 1-rank run with accelerator tasks paying PCIe transfers."""
    import numpy as np
    from dataclasses import replace

    node = replace(HAWK.node, workers=2, gpus=1, gpu_flops=500.0e9,
                   pcie_bandwidth=12.0e9)
    machine = replace(HAWK, node=node)
    tel = Telemetry(nranks=1, capacity=None)
    be = ParsecBackend(Cluster(machine, 1), telemetry=tel)
    buf = np.zeros(4096, dtype=np.uint8)
    for i in range(4):
        be.submit(0, lambda: None, flops=1e9, device="gpu",
                  name="GEMM", key=i, inputs=(buf,) if i == 0 else ())
    be.submit(0, lambda: None, flops=1e6, name="HOST", key=9)
    be.run()
    return tel


def test_gpu_lane_summary_rows(gpu_run):
    rows = gpu_lane_summary(gpu_run)
    assert len(rows) == 1
    row = rows[0]
    assert row["template"] == "GEMM"
    assert row["count"] == 4
    assert row["ranks"] == 1
    assert row["busy"] > 0.0
    # The buffer transfers once; residency absorbs the other three tasks.
    assert row["pcie_bytes"] == 4096
    assert gpu_lane_summary(Telemetry(nranks=1)) == []


def test_protocol_bytes_includes_pcie_channel(gpu_run):
    split = protocol_bytes(gpu_run)
    assert split.get("pcie") == 4096


def test_report_renders_accelerator_section(gpu_run):
    html = render_report(gpu_run)
    assert "Accelerator lanes" in html
    assert "GEMM" in html
    # CPU-only runs must not grow the section.
    a = spd_matrix(128, seed=3)
    m = TiledMatrix.from_dense(a, 64, BlockCyclicDistribution(1, 1))
    tel = Telemetry(capacity=None)
    cholesky_ttg(m, ParsecBackend(Cluster(HAWK, 1), telemetry=tel))
    assert "Accelerator lanes" not in render_report(tel)


@pytest.fixture(scope="module")
def sharded_health_run():
    """A telemetered sharded run with the health profiler armed (a
    sink-only ledger arms it without touching disk)."""
    from repro.telemetry.ledger import LedgerWriter

    a = spd_matrix(256, seed=11)
    m = TiledMatrix.from_dense(a, 64, BlockCyclicDistribution(2, 2))
    tel = Telemetry(capacity=None)
    backend = ParsecBackend(Cluster.with_engine(HAWK.with_workers(2), 4,
                                                engine="sharded"),
                            telemetry=tel)
    backend.attach_ledger(LedgerWriter(None, run_id="health"))
    cholesky_ttg(m, backend)
    backend.close_ledger()
    return tel


def test_engine_health_aggregates_window_instants(sharded_health_run):
    health = engine_health(sharded_health_run)
    assert health["windows"] > 0
    assert len(health["widths"]) == health["windows"]
    assert len(health["events_by_shard"]) == 4
    assert sum(health["events_by_shard"]) > 0
    assert health["clock_skew_peak"] >= 0.0
    assert health["mean_batch"] > 0.0
    assert engine_health(Telemetry(nranks=1)) == {}


def test_report_renders_engine_health_section(sharded_health_run):
    html = render_report(sharded_health_run)
    assert "Engine health (sharded windows)" in html
    assert "r0" in html  # per-rank event table


def test_trend_svg_commit_markers_and_host_seconds():
    h = BenchHistory("potrf")
    for i, sha in enumerate(("aaa1111", "aaa1111", "bbb2222", "ccc3333")):
        h.append(BenchRecord(app="potrf", config={"n": 1024}, seed=i,
                             makespan=0.01 + i * 1e-4, gflops=100.0,
                             host_seconds=2.0 + i, git_sha=sha,
                             baseline=(i == 0)))
    svg = trend_svg(h)
    # One dashed marker per SHA change (aaa->bbb, bbb->ccc).
    assert svg.count('class="commit"') == 2
    assert "commit bbb2222" in svg and "commit ccc3333" in svg
    host = trend_svg(h, metric="host_seconds")
    assert "<svg" in host
    assert "5.500 s" in host  # axis max = 1.1 * the 5.0 s peak, in seconds
    assert "ms" not in host   # host time is never formatted as makespan ms


def test_report_embeds_host_seconds_trend(cholesky_run, tmp_path):
    h = BenchHistory("potrf")
    h.append(BenchRecord(app="potrf", config={"n": 1024}, makespan=0.01,
                         gflops=100.0, host_seconds=3.5, git_sha="e5f",
                         baseline=True))
    h.save(directory=str(tmp_path))
    html = render_report(cholesky_run, histories=load_histories(str(tmp_path)))
    assert "<b>potrf</b> makespan" in html
    assert "<b>potrf</b> host seconds" in html


def test_report_warns_on_dropped_events():
    tel = Telemetry(nranks=1, capacity=4)
    for i in range(32):
        tel.bus.complete("T", 0, 0, float(i), float(i) + 0.5, cat="task",
                         args={"key": repr(i), "template": "T"})
    assert sum(tel.bus.dropped) > 0
    html = render_report(tel)
    assert "evicted" in html or "dropped" in html
