"""Tests for the messaging API surface: free functions, modes, handles."""

import pytest

from repro import core as ttg
from repro.core.exceptions import DeliveryError
from repro.core.messaging import MODES, current_outputs
from repro.runtime import ParsecBackend
from repro.sim.cluster import Cluster, HAWK


def backend(nnodes=4):
    return ParsecBackend(Cluster(HAWK, nnodes))


def run_single(body, out_edges, consumers, nnodes=4, key=0):
    """Spawn `body` as a source tt and drain; consumers is a list of
    (edge, fn, keymap) sinks."""
    S = ttg.make_tt(body, [], out_edges, name="S", keymap=lambda k: 0)
    tts = [S]
    for e, fn, km in consumers:
        tts.append(ttg.make_tt(fn, [e], [], keymap=km))
    ex = ttg.TaskGraph(tts).executable(backend(nnodes))
    ex.invoke(S, key)
    ex.fence()
    return ex


def test_sendk_pure_control():
    e = ttg.Edge("ctl", value_type=ttg.Void)
    got = []

    def body(key, outs):
        ttg.sendk(0, 42)

    run_single(body, [e], [(e, lambda k, v, outs: got.append((k, v)), lambda k: 0)])
    assert got == [(42, None)]


def test_sendv_pure_data():
    e = ttg.Edge("data", key_type=ttg.Void)
    got = []

    def body(key, outs):
        ttg.sendv(0, "payload")

    run_single(body, [e], [(e, lambda k, v, outs: got.append((k, v)), lambda k: 0)])
    assert got == [(None, "payload")]


def test_free_broadcast():
    e = ttg.Edge("b")
    got = []

    def body(key, outs):
        ttg.broadcast(0, [1, 2, 3], "x")

    run_single(body, [e], [(e, lambda k, v, outs: got.append(k), lambda k: k % 4)])
    assert sorted(got) == [1, 2, 3]


def test_free_broadcast_multi():
    e1, e2 = ttg.Edge("m1"), ttg.Edge("m2")
    got = []

    def body(key, outs):
        ttg.broadcast_multi([(0, [1]), (1, [2])], "y")

    run_single(
        body,
        [e1, e2],
        [
            (e1, lambda k, v, outs: got.append(("t0", k, v)), lambda k: 0),
            (e2, lambda k, v, outs: got.append(("t1", k, v)), lambda k: 0),
        ],
    )
    assert sorted(got) == [("t0", 1, "y"), ("t1", 2, "y")]


def test_explicit_out_handle_overrides_context():
    e = ttg.Edge("h")
    got = []

    def body(key, outs):
        ttg.send(0, key, "via-handle", out=outs)

    run_single(body, [e], [(e, lambda k, v, outs: got.append(v), lambda k: 0)])
    assert got == ["via-handle"]


def test_invalid_mode_rejected():
    e = ttg.Edge("mode")

    def body(key, outs):
        outs.send(0, 0, "x", mode="bogus")

    S = ttg.make_tt(body, [], [e], keymap=lambda k: 0)
    C = ttg.make_tt(lambda k, v, outs: None, [e], [], keymap=lambda k: 0)
    ex = ttg.TaskGraph([S, C]).executable(backend(1))
    ex.invoke(S, 0)
    with pytest.raises(DeliveryError):
        ex.fence()
    assert MODES == ("value", "cref", "move")


def test_unknown_output_terminal_index_and_name():
    e = ttg.Edge("u")

    def body_idx(key, outs):
        outs.send(5, 0, "x")

    S = ttg.make_tt(body_idx, [], [e], keymap=lambda k: 0)
    C = ttg.make_tt(lambda k, v, outs: None, [e], [], keymap=lambda k: 0)
    ex = ttg.TaskGraph([S, C]).executable(backend(1))
    ex.invoke(S, 0)
    with pytest.raises(DeliveryError):
        ex.fence()


def test_outputs_expose_rank_and_nranks():
    e = ttg.Edge("meta")
    seen = []

    def body(key, outs):
        seen.append((outs.rank, outs.nranks))
        outs.send(0, key, 1)

    run_single(body, [e], [(e, lambda k, v, outs: None, lambda k: 0)], nnodes=3)
    assert seen == [(0, 3)]


def test_broadcast_empty_keys_is_noop():
    e = ttg.Edge("empty")

    def body(key, outs):
        outs.broadcast(0, [], "never")

    S = ttg.make_tt(body, [], [e], name="S", keymap=lambda k: 0)
    C = ttg.make_tt(lambda k, v, outs: None, [e], [], keymap=lambda k: 0)
    be = backend(2)
    ex = ttg.TaskGraph([S, C]).executable(be)
    ex.invoke(S, 0)
    ex.fence()
    assert dict(ex.task_counts) == {"S": 1}


def test_value_mode_isolates_sender_mutation():
    e = ttg.Edge("iso")
    from repro.linalg.tile import MatrixTile

    received = []

    def body(key, outs):
        t = MatrixTile.zeros(2, 2)
        outs.send(0, 0, t, mode="value")
        t.data[0, 0] = 99.0  # mutate after sending: receiver must not see it

    def sink(key, tile, outs):
        received.append(tile.data[0, 0])

    run_single(body, [e], [(e, sink, lambda k: 0)], nnodes=1)
    assert received == [0.0]


def test_move_mode_shares_object_locally():
    e = ttg.Edge("mv")
    from repro.linalg.tile import MatrixTile

    src_tile = MatrixTile.zeros(2, 2)
    received = []

    def body(key, outs):
        outs.send(0, 0, src_tile, mode="move")

    def sink(key, tile, outs):
        received.append(tile)

    run_single(body, [e], [(e, sink, lambda k: 0)], nnodes=1)
    assert received[0] is src_tile  # zero-copy hand-off


def test_current_outputs_inside_body():
    e = ttg.Edge("cur")
    ok = []

    def body(key, outs):
        assert current_outputs() is outs
        ok.append(True)
        outs.send(0, key, 1)

    run_single(body, [e], [(e, lambda k, v, outs: None, lambda k: 0)])
    assert ok == [True]
