"""Fast smoke tests of the figure experiment plumbing (tiny scales).

The full figure runs live in benchmarks/; these exercise the same code
paths in seconds so `pytest tests/` alone covers the harness.
"""


from repro.bench import figures


def test_fig5_tiny():
    series = figures.fig5_potrf_weak(max_nodes=2, workers=4, per_node=1024, b=256)
    assert set(series) == {"ttg", "dplasma", "chameleon", "slate", "scalapack"}
    for s in series.values():
        assert len(s.points) == 2
        assert all(y > 0 for y in s.ys)


def test_fig6_tiny():
    series = figures.fig6_potrf_problem(nodes=2, workers=4, b=256,
                                        sizes=[1024, 2048])
    for s in series.values():
        assert s.xs == [1024, 2048]
        assert s.ys[1] > s.ys[0]  # bigger problems run faster per flop


def test_fig8_tiny():
    series = figures.fig8_fw_hawk(max_nodes=4, workers=4, n=512)
    parsec = [n for n in series if n.startswith("ttg-parsec")]
    assert len(parsec) == 3
    assert any(n.startswith("mpi+openmp") for n in series)
    for s in series.values():
        assert all(y > 0 for y in s.ys)


def test_fig9_tiny():
    series = figures.fig9_fw_seawulf(max_nodes=4, workers=4, n=512)
    assert any(n.startswith("ttg-madness") for n in series)


def test_fig12_tiny():
    series = figures.fig12_bspmm(max_nodes=8, workers=4, natoms=40)
    assert set(series) == {"ttg-parsec", "ttg-madness", "dbcsr"}
    for s in series.values():
        assert s.xs == [4, 8]
        assert all(y > 0 for y in s.ys)


def test_fig13_tiny():
    series = figures.fig13a_mra_seawulf(max_nodes=2, workers=4)
    assert set(series) == {"ttg-parsec", "ttg-madness", "native-madness"}
    for s in series.values():
        assert all(y > 0 for y in s.ys)


def test_bench_scale_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert figures.bench_scale() == "small"
    monkeypatch.setenv("REPRO_BENCH_SCALE", "LARGE")
    assert figures.bench_scale() == "large"


def test_scaled_machine_helper():
    from repro.sim.cluster import HAWK

    m = figures.scaled(HAWK, 4)
    assert m.node.workers == 4
    assert m.network == HAWK.network
