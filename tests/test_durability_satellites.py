"""Satellites of the durability PR: archive coverage of every app payload
type, ``telemetry validate``'s killed-run warning, ledger v2 records, and
the report's checkpoint/resume markers."""

import json

import numpy as np
import pytest

from repro.linalg.blocksparse import BlockSparseMatrix, IrregularTiling
from repro.linalg.tile import MatrixTile
from repro.serialization.archive import BufferInputArchive, BufferOutputArchive
from repro.telemetry import Telemetry
from repro.telemetry.ledger import (
    LEDGER_VERSION,
    LedgerWriter,
    read_ledger,
    replay,
    validate_ledger,
)


def _roundtrip(value):
    return BufferInputArchive(BufferOutputArchive().store(value).bytes()).load()


# ----------------------------------------- archive coverage: linalg tiles


def test_archive_roundtrips_dense_matrix_tile():
    rng = np.random.default_rng(7)
    t = MatrixTile(5, 3, rng.standard_normal((5, 3)))
    out = _roundtrip(t)
    assert isinstance(out, MatrixTile)
    assert out.shape == (5, 3)
    assert np.allclose(out.data, t.data)


def test_archive_roundtrips_synthetic_tile():
    t = MatrixTile.synthetic(64, 64)
    out = _roundtrip(t)
    assert out.is_synthetic and out.shape == (64, 64)
    assert out.nbytes == t.nbytes


def test_archive_roundtrips_every_blocksparse_tile():
    """bspmm payloads: every stored block of an irregular block-sparse
    matrix survives the wire byte-for-byte."""
    rng = np.random.default_rng(3)
    tiling = IrregularTiling.group_to_target([3, 5, 2, 4, 6], target=8)
    dense = rng.standard_normal((tiling.n, tiling.n))
    dense[np.abs(dense) < 0.8] = 0.0
    m = BlockSparseMatrix.from_dense(dense, tiling, tiling)
    assert m.block_keys(), "need a nonempty sparsity pattern"
    for key, tile in m.blocks():
        out = _roundtrip(tile)
        assert np.allclose(out.data, tile.data), key
    # and the whole matrix object round-trips through the pickle frame
    whole = _roundtrip(m)
    assert whole.block_keys() == m.block_keys()
    assert np.allclose(whole.to_dense(), m.to_dense())


# -------------------------------------------- archive coverage: MRA types


@pytest.fixture(scope="module")
def mra_tree():
    from repro.apps.mra import Multiwavelet, project_adaptive, random_gaussians

    mw = Multiwavelet(k=4, d=1)
    f = random_gaussians(1, d=1, seed=5)[0]
    return project_adaptive(mw, f, thresh=1e-4, max_level=6)


def test_archive_roundtrips_mra_message():
    from repro.apps.mra.data import MraMessage

    rng = np.random.default_rng(1)
    msg = MraMessage(
        arrays=(rng.standard_normal((4, 4)), None, rng.standard_normal(6)),
        meta=((2, (1, 0)), "compress"),
        inflate=2.5,
    )
    out = _roundtrip(msg)
    assert isinstance(out, MraMessage)
    assert out.meta == msg.meta and out.inflate == msg.inflate
    assert out.arrays[1] is None
    assert np.allclose(out.arrays[0], msg.arrays[0])
    assert np.allclose(out.arrays[2], msg.arrays[2])
    assert out.nbytes == msg.nbytes


def test_archive_roundtrips_function_tree_nodes(mra_tree):
    """Every multiwavelet leaf tensor (box key + coefficients)."""
    assert mra_tree.leaves, "projection produced no leaves"
    for box, coeffs in mra_tree.leaves.items():
        out_box, out_coeffs = _roundtrip(box), _roundtrip(coeffs)
        assert out_box == box
        assert np.array_equal(out_coeffs, coeffs)


def test_archive_roundtrips_compressed_tree(mra_tree):
    ct = mra_tree.compress()
    out = _roundtrip(ct)
    assert np.allclose(out.s0, ct.s0)
    assert set(out.diffs) == set(ct.diffs)
    for box in ct.diffs:
        assert np.allclose(out.diffs[box], ct.diffs[box])
    assert out.norm2() == pytest.approx(ct.norm2())


# --------------------------------- telemetry validate: killed-run warning


def _cli(*argv):
    import io

    from repro.telemetry.cli import main

    out = io.StringIO()
    code = main(list(argv), stream=out)
    return code, out.getvalue()


def _ledger(path, phases, close):
    led = LedgerWriter(str(path), run_id="r1", meta={"app": "unit"})
    for p in phases:
        led.phase(p)
    if close:
        led.close(1.0)
    return str(path)


def test_validate_flags_killed_ledger_as_incomplete(tmp_path):
    path = _ledger(tmp_path / "killed.jsonl",
                   ["build", "fence", "execute"], close=False)
    code, text = _cli("validate", path, "--json")
    assert code == 0  # structurally valid -- a warning, not a problem
    result = json.loads(text)
    assert result["valid"] is True
    assert result["incomplete"] is True
    assert result["final_phase"] == "execute"
    code, text = _cli("validate", path)
    assert code == 0
    assert "WARNING" in text and "incomplete/killed" in text
    assert "repro.durability resume" in text


def test_validate_complete_ledger_not_flagged(tmp_path):
    path = _ledger(tmp_path / "done.jsonl",
                   ["build", "fence", "execute", "drain"], close=True)
    code, text = _cli("validate", path, "--json")
    assert code == 0
    result = json.loads(text)
    assert result["incomplete"] is False
    assert result["final_phase"] == "drain"
    code, text = _cli("validate", path)
    assert "WARNING" not in text


# --------------------------------------------------- ledger v2 records


def test_ledger_v2_durability_records_validate_and_replay(tmp_path):
    path = str(tmp_path / "v2.jsonl")
    led = LedgerWriter(path, run_id="r2",
                       meta={"resumed_from": "r2/ckpt-1@events=50"})
    led.phase("build")
    led.resume(run="r2", point="r2/ckpt-1@events=50", checkpoints=2,
               events=50)
    led.checkpoint(sim=0.5, events=25, index=0, digest="abc123")
    led.checkpoint(sim=1.0, events=50, index=1, digest="def456")
    led.retry(app="mra", seed=0, attempt=1, error="InjectedFault: boom")
    led.failure(app="fw", seed=1, attempts=3, error="killed")
    led.phase("drain")
    led.close(1.5)
    records = read_ledger(path)
    assert records[0]["version"] == LEDGER_VERSION >= 2
    assert validate_ledger(records) == []
    snap = replay(records)
    assert snap.checkpoints == 2
    assert snap.last_checkpoint["index"] == 1
    assert snap.last_checkpoint["events"] == 50
    assert snap.resumed_from == "r2/ckpt-1@events=50"
    assert snap.retries == 1
    assert snap.failures == 1
    assert snap.complete


def test_ledger_rejects_unknown_record_type(tmp_path):
    path = _ledger(tmp_path / "ok.jsonl", ["build"], close=True)
    records = read_ledger(path)
    records.insert(1, dict(records[1], type="telepathy"))
    assert any("telepathy" in p for p in validate_ledger(records))


# ------------------------------------------- report markers and banner


@pytest.fixture()
def marked_run():
    tel = Telemetry(nranks=1, capacity=None)
    tel.bus.complete("T", 0, 0, 0.0, 2.0, cat="task",
                     args={"template": "T", "key": 0})
    tel.bus.instant("checkpoint", 0, 905, cat="ckpt", index=0, events=25,
                    digest="abc123def456")
    tel.bus.instant("checkpoint", 0, 905, cat="ckpt", index=1, events=50,
                    digest="0123456789ab")
    return tel


def test_gantt_draws_checkpoint_markers(marked_run):
    from repro.telemetry.report_html import gantt_svg

    svg = gantt_svg(marked_run)
    assert svg.count('stroke="#009E73"') == 2
    assert "checkpoint #0" in svg and "checkpoint #1" in svg
    assert "checkpoint</span>" in svg          # legend entry
    assert 'stroke="#D55E00"' not in svg       # no resume marker


def test_report_resume_banner_and_marker(marked_run):
    from repro.telemetry.report_html import render_report

    marked_run.bus.instant("resume", 0, 905, cat="ckpt", run="r",
                           point="r/ckpt-1@events=50", checkpoints=2,
                           events=50)
    html = render_report(marked_run, title="resumed")
    assert '<div class="resume">' in html
    assert "resumed from" in html and "r/ckpt-1@events=50" in html
    assert 'stroke="#D55E00"' in html
    assert "resume</span>" in html             # legend entry


def test_report_without_checkpoints_is_unchanged(tmp_path):
    from repro.telemetry.report_html import render_report

    tel = Telemetry(nranks=1, capacity=None)
    tel.bus.complete("T", 0, 0, 0.0, 1.0, cat="task",
                     args={"template": "T", "key": 0})
    html = render_report(tel)
    assert '<div class="resume">' not in html
    assert "checkpoint</span>" not in html
