"""Checkpoint format: framing, atomicity, corruption rejection, chains."""

import json
import os

import pytest

import repro.durability.checkpoint as ckpt_mod
from repro.durability import (
    CHECKPOINT_SCHEMA,
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    Checkpointer,
    checkpoint_path,
    list_runs,
    load_chain,
    read_checkpoint,
    read_run_manifest,
    run_id_for,
    state_digest,
    write_checkpoint,
)
from repro.durability.checkpoint import (
    _MIGRATIONS,
    encode_checkpoint,
    write_run_manifest,
)
from repro.durability.cli import main as durability_main
from repro.serialization.archive import BufferOutputArchive


def _mk(index=0, events=10, prev="", run="app-seed0-seq", **state):
    state = dict({"engine": {"events": events}, "stats": {"tasks": index + 1}},
                 **state)
    return Checkpoint(
        run_id=run, index=index, events=events, sim=float(events) * 0.5,
        seq=events + 1, every=10, spec={"app": "app", "seed": 0},
        state=state, state_digest=state_digest(state), prev_digest=prev,
    )


def _write_chain(directory, run="app-seed0-seq", events=(10, 20, 30)):
    prev = ""
    write_run_manifest(directory, run, {"app": "app", "seed": 0}, 10)
    paths = []
    for i, ev in enumerate(events):
        c = _mk(index=i, events=ev, prev=prev, run=run)
        paths.append(write_checkpoint(
            checkpoint_path(directory, run, i, ev), c))
        prev = c.state_digest
    return paths


# ----------------------------------------------------------------- format


def test_roundtrip_checkpoint_file(tmp_path):
    c = _mk()
    path = write_checkpoint(checkpoint_path(str(tmp_path), c.run_id, 0, 10), c)
    out = read_checkpoint(path)
    assert out.run_id == c.run_id
    assert out.index == 0 and out.events == 10
    assert out.sim == c.sim and out.seq == c.seq and out.every == 10
    assert out.spec == c.spec and out.state == c.state
    assert out.state_digest == c.state_digest
    assert out.version == CHECKPOINT_VERSION
    assert out.path == path


def test_host_time_excluded_from_digest(tmp_path):
    c = _mk()
    a = encode_checkpoint(c, host=1.0)
    b = encode_checkpoint(c, host=2.0)
    assert a != b  # the bytes differ (host is carried)...
    pa = str(tmp_path / "a.ckpt")
    pb = str(tmp_path / "b.ckpt")
    write_checkpoint(pa, c, host=1.0)
    write_checkpoint(pb, c, host=2.0)
    # ...but the attestation does not.
    assert read_checkpoint(pa).state_digest == read_checkpoint(pb).state_digest


def test_truncation_at_every_byte_rejected(tmp_path):
    """The acceptance criterion: no prefix of a checkpoint is restorable."""
    data = encode_checkpoint(_mk())
    path = str(tmp_path / "t.ckpt")
    for cut in range(len(data)):
        with open(path, "wb") as fh:
            fh.write(data[:cut])
        with pytest.raises(CheckpointError) as exc:
            read_checkpoint(path)
        # every diagnostic names the schema version it validated against
        assert CHECKPOINT_SCHEMA in str(exc.value), cut


def test_single_byte_corruption_rejected(tmp_path):
    data = bytearray(encode_checkpoint(_mk()))
    path = str(tmp_path / "c.ckpt")
    for pos in range(len(data)):
        data[pos] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(data)
        with pytest.raises(CheckpointError):
            read_checkpoint(path)
        data[pos] ^= 0xFF


def test_trailing_garbage_rejected(tmp_path):
    path = str(tmp_path / "g.ckpt")
    with open(path, "wb") as fh:
        fh.write(encode_checkpoint(_mk()) + b"junk")
    with pytest.raises(CheckpointError, match="trailing"):
        read_checkpoint(path)


def test_wrong_schema_rejected(tmp_path):
    arch = BufferOutputArchive()
    arch.store("some.other/schema")
    path = str(tmp_path / "s.ckpt")
    with open(path, "wb") as fh:
        fh.write(arch.bytes())
    with pytest.raises(CheckpointError, match="schema"):
        read_checkpoint(path)


def test_newer_version_rejected(tmp_path):
    c = _mk()
    c.version = CHECKPOINT_VERSION + 1
    path = str(tmp_path / "v.ckpt")
    with open(path, "wb") as fh:
        fh.write(encode_checkpoint(c))
    with pytest.raises(CheckpointError, match="newer"):
        read_checkpoint(path)


def test_migration_chain_upgrades_old_versions(tmp_path, monkeypatch):
    """The bench-history migration pattern: a v(N) file read by v(N+1)
    code passes through ``_MIGRATIONS[N]`` exactly once."""
    c = _mk()
    path = write_checkpoint(checkpoint_path(str(tmp_path), c.run_id, 0, 10), c)

    calls = []

    def _v1_to_v2(manifest, state):
        calls.append(manifest["index"])
        return dict(manifest, upgraded=True), state

    monkeypatch.setattr(ckpt_mod, "CHECKPOINT_VERSION", CHECKPOINT_VERSION + 1)
    monkeypatch.setitem(_MIGRATIONS, CHECKPOINT_VERSION, _v1_to_v2)
    out = read_checkpoint(path)
    assert calls == [0]
    assert out.version == CHECKPOINT_VERSION + 1


def test_atomic_write_leaves_no_tmp(tmp_path):
    c = _mk()
    path = write_checkpoint(checkpoint_path(str(tmp_path), c.run_id, 0, 10), c)
    run_dir = os.path.dirname(path)
    assert not [n for n in os.listdir(run_dir) if n.endswith(".tmp")]
    # overwriting re-runs the same protocol
    write_checkpoint(path, c)
    assert not [n for n in os.listdir(run_dir) if n.endswith(".tmp")]


# ------------------------------------------------------------------ chains


def test_load_chain_intact(tmp_path):
    _write_chain(str(tmp_path))
    report = load_chain(str(tmp_path), "app-seed0-seq")
    assert report.valid
    assert [c.index for c in report.checkpoints] == [0, 1, 2]
    assert report.latest.events == 30
    assert len(report.files) == 3


def test_load_chain_falls_back_past_torn_latest(tmp_path):
    paths = _write_chain(str(tmp_path))
    with open(paths[-1], "r+b") as fh:
        fh.truncate(17)  # torn write of the newest checkpoint
    report = load_chain(str(tmp_path), "app-seed0-seq")
    assert len(report.checkpoints) == 2
    assert report.latest.index == 1
    assert len(report.problems) == 1 and not report.valid


def test_load_chain_breaks_at_missing_middle(tmp_path):
    paths = _write_chain(str(tmp_path))
    os.unlink(paths[1])
    report = load_chain(str(tmp_path), "app-seed0-seq")
    # index 0 is intact; index 2 cannot link past the hole
    assert [c.index for c in report.checkpoints] == [0]
    assert any("chain break" in p for p in report.problems)


def test_load_chain_equal_events_legal_decrease_not(tmp_path):
    # consecutive drain checkpoints of an already-drained fence attest
    # the same cursor -- that is a legal chain
    _write_chain(str(tmp_path), events=(10, 10))
    report = load_chain(str(tmp_path), "app-seed0-seq")
    assert report.valid and len(report.checkpoints) == 2
    # ...but time running backwards is corruption
    _write_chain(str(tmp_path), run="bad-seed0-seq", events=(10, 5))
    # (filenames sort by index, so the regression is visible to the loader)
    report = load_chain(str(tmp_path), "bad-seed0-seq")
    assert len(report.checkpoints) == 1
    assert any("earlier than previous" in p for p in report.problems)


def test_load_chain_rejects_foreign_run(tmp_path):
    c = _mk(run="other-seed1-seq")
    write_checkpoint(checkpoint_path(str(tmp_path), "app-seed0-seq", 0, 10), c)
    report = load_chain(str(tmp_path), "app-seed0-seq")
    assert not report.checkpoints
    assert any("belongs to run" in p for p in report.problems)


# ------------------------------------------------------------ run manifest


def test_run_manifest_roundtrip_and_listing(tmp_path):
    write_run_manifest(str(tmp_path), "r1", {"app": "mra"}, 64)
    payload = read_run_manifest(str(tmp_path), "r1")
    assert payload["spec"] == {"app": "mra"} and payload["every"] == 64
    assert payload["schema"] == CHECKPOINT_SCHEMA
    assert list_runs(str(tmp_path)) == ["r1"]


def test_run_manifest_missing_and_newer_version(tmp_path):
    with pytest.raises(CheckpointError, match="no durable run"):
        read_run_manifest(str(tmp_path), "ghost")
    run_dir = tmp_path / "r2"
    run_dir.mkdir()
    (run_dir / "run.json").write_text(json.dumps(
        {"schema": CHECKPOINT_SCHEMA, "version": CHECKPOINT_VERSION + 1}))
    with pytest.raises(CheckpointError, match="newer"):
        read_run_manifest(str(tmp_path), "r2")


def test_checkpointer_rejects_bad_cadence(tmp_path):
    with pytest.raises(CheckpointError, match="checkpoint_every"):
        Checkpointer(str(tmp_path), "r", every=0)


def test_checkpointer_write_mode_clears_stale_files(tmp_path):
    _write_chain(str(tmp_path))
    Checkpointer(str(tmp_path), "app-seed0-seq", spec={"app": "app"}, every=10)
    report = load_chain(str(tmp_path), "app-seed0-seq")
    assert not report.files  # stale chain of the previous attempt is gone


def test_run_id_for_shape():
    assert run_id_for({"app": "mra", "seed": 3, "engine": "sharded"}) == \
        "mra-seed3-sharded"
    assert run_id_for({}) == "run-seed0-seq"


# --------------------------------------------------------------------- CLI


def test_cli_inspect_json(tmp_path, capsys):
    _write_chain(str(tmp_path))
    assert durability_main(["inspect", str(tmp_path), "--json"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["schema"] == CHECKPOINT_SCHEMA
    assert out["runs"][0]["run"] == "app-seed0-seq"
    assert out["runs"][0]["checkpoints"] == 3
    assert out["runs"][0]["last"]["events"] == 30


def test_cli_validate_exit_codes(tmp_path, capsys):
    paths = _write_chain(str(tmp_path))
    # intact root, run dir, and single file all validate
    assert durability_main(["validate", str(tmp_path)]) == 0
    assert durability_main(
        ["validate", os.path.dirname(paths[0])]) == 0
    assert durability_main(["validate", paths[0]]) == 0
    capsys.readouterr()
    # a torn file flips every enclosing target to exit 1
    with open(paths[-1], "r+b") as fh:
        fh.truncate(9)
    assert durability_main(["validate", paths[-1]]) == 1
    assert durability_main(["validate", str(tmp_path), "--json"]) == 1
    out = capsys.readouterr().out
    result = json.loads(out[out.index("{"):])
    assert result["valid"] is False and result["problems"]
