"""Tests for archives, protocols, splitmd and trait-based selection."""

import numpy as np
import pytest

from repro.linalg.tile import MatrixTile
from repro.serialization.archive import ArchiveError, BufferInputArchive, BufferOutputArchive
from repro.serialization.protocols import (
    GenericProtocol,
    MadnessProtocol,
    TrivialProtocol,
    wire_size,
)
from repro.serialization.splitmd import (
    SplitMetadataProtocol,
    pack_metadata,
    payload_nbytes,
    unpack_metadata,
)
from repro.serialization.traits import (
    is_trivially_serializable,
    register_trivial,
    select_protocol,
    supports_splitmd,
)


# ------------------------------------------------------------------ archive


@pytest.mark.parametrize(
    "value",
    [
        None,
        42,
        -(2**40),
        3.14159,
        True,
        False,
        "héllo world",
        b"\x00\x01binary",
        [1, 2, {"a": (3, 4)}],
        {"nested": [None, 1.5]},
    ],
)
def test_archive_roundtrip_scalars(value):
    ar = BufferOutputArchive()
    ar.store(value)
    out = BufferInputArchive(ar.bytes()).load()
    assert out == value
    assert type(out) is type(value)


def test_archive_roundtrip_ndarray():
    a = np.arange(24, dtype=np.float64).reshape(4, 6)
    ar = BufferOutputArchive().store(a)
    out = BufferInputArchive(ar.bytes()).load()
    assert isinstance(out, np.ndarray)
    assert out.dtype == a.dtype
    assert np.array_equal(out, a)


def test_archive_roundtrip_noncontiguous_array():
    a = np.arange(24, dtype=np.int32).reshape(4, 6)[:, ::2]
    out = BufferInputArchive(BufferOutputArchive().store(a).bytes()).load()
    assert np.array_equal(out, a)


def test_archive_multiple_frames():
    ar = BufferOutputArchive()
    ar.store(1).store("two").store(3.0)
    ia = BufferInputArchive(ar.bytes())
    assert ia.load() == 1
    assert ia.load() == "two"
    assert ia.load() == 3.0
    assert ia.at_end()


def test_archive_underflow():
    ar = BufferOutputArchive().store(12345)
    data = ar.bytes()[:-2]
    with pytest.raises(ArchiveError):
        BufferInputArchive(data).load()


def test_archive_nbytes_grows():
    ar = BufferOutputArchive()
    n0 = ar.nbytes
    ar.store(np.zeros(100))
    assert ar.nbytes > n0 + 800


# ---------------------------------------------------------------- protocols


def test_wire_size_uses_nominal():
    t = MatrixTile.synthetic(64, 64)
    assert wire_size(t, 50) == 64 * 64 * 8
    assert wire_size(123, 50) == 50


def test_generic_roundtrip_and_copies():
    p = GenericProtocol()
    msg = p.serialize({"k": [1, 2, 3]})
    assert msg.protocol == "generic"
    assert msg.sender_copy_bytes == msg.eager_bytes
    assert msg.receiver_copy_bytes == msg.eager_bytes
    assert p.deserialize(msg) == {"k": [1, 2, 3]}


def test_madness_double_copies():
    p = MadnessProtocol()
    msg = p.serialize([1.0] * 10)
    assert msg.sender_copy_bytes == 2 * msg.eager_bytes
    assert msg.receiver_copy_bytes == 2 * msg.eager_bytes
    assert p.deserialize(msg) == [1.0] * 10


def test_trivial_applicable_to_scalars_and_tuples():
    p = TrivialProtocol()
    assert p.applicable(5)
    assert p.applicable((1, 2, 3))
    assert p.applicable(2.5)
    assert not p.applicable([1, 2])
    assert not p.applicable({"a": 1})


def test_trivial_roundtrip():
    p = TrivialProtocol()
    msg = p.serialize((3, 4))
    assert msg.receiver_copy_bytes == 0
    assert p.deserialize(msg) == (3, 4)


def test_register_trivial():
    class Pod:
        __trivially_serializable__ = False
        nbytes = 16

        def __eq__(self, other):
            return isinstance(other, Pod)

    assert not is_trivially_serializable(Pod())
    register_trivial(Pod)
    assert is_trivially_serializable(Pod())


def test_dunder_trivial_flag():
    class Pod2:
        __trivially_serializable__ = True
        nbytes = 8

    assert is_trivially_serializable(Pod2())


# ------------------------------------------------------------------ splitmd


def test_tile_supports_splitmd():
    assert supports_splitmd(MatrixTile.zeros(4, 4))
    assert not supports_splitmd(42)
    assert not supports_splitmd("text")


def test_splitmd_roundtrip_tile():
    p = SplitMetadataProtocol()
    rng = np.random.default_rng(0)
    t = MatrixTile(5, 7, rng.standard_normal((5, 7)))
    msg = p.serialize(t)
    assert msg.protocol == "splitmd"
    assert msg.rma_bytes == 5 * 7 * 8
    assert msg.sender_copy_bytes == 0 and msg.receiver_copy_bytes == 0
    out = p.deserialize(msg)
    assert isinstance(out, MatrixTile)
    assert out.allclose(t)


def test_splitmd_synthetic_tile_charges_nominal():
    p = SplitMetadataProtocol()
    t = MatrixTile.synthetic(32, 32)
    msg = p.serialize(t)
    assert msg.rma_bytes == 32 * 32 * 8
    out = p.deserialize(msg)
    assert out.shape == (32, 32)


def test_pack_unpack_metadata():
    t = MatrixTile.zeros(3, 3)
    cls, meta = unpack_metadata(pack_metadata(t))
    assert cls is MatrixTile
    assert meta == (3, 3, True)


def test_payload_nbytes():
    assert payload_nbytes(MatrixTile.zeros(2, 2)) == 32
    assert payload_nbytes(MatrixTile.synthetic(2, 2)) == 32


# ------------------------------------------------------------------- traits


def test_select_protocol_preference_order():
    tile = MatrixTile.zeros(8, 8)
    assert select_protocol(tile, backend_supports_splitmd=True).name == "splitmd"
    assert select_protocol(tile, backend_supports_splitmd=False).name == "generic"
    assert select_protocol(5, backend_supports_splitmd=True).name == "trivial"
    assert select_protocol([1, 2], backend_supports_splitmd=False).name == "generic"


def test_select_protocol_whitelist():
    tile = MatrixTile.zeros(4, 4)
    p = select_protocol(
        tile, backend_supports_splitmd=True, allowed=("trivial", "madness")
    )
    assert p.name == "madness"


def test_select_protocol_nothing_applicable():
    with pytest.raises(TypeError):
        select_protocol(MatrixTile.zeros(2, 2), allowed=("trivial",))
