"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import core as ttg
from repro.apps.floydwarshall import fw_reference
from repro.apps.mra.multiwavelet import Multiwavelet
from repro.linalg.blocksparse import IrregularTiling
from repro.linalg.tile import MatrixTile
from repro.linalg.tiled_matrix import BlockCyclicDistribution, grid_dims
from repro.runtime import ParsecBackend
from repro.runtime.termination import DijkstraScholten
from repro.serialization.archive import BufferInputArchive, BufferOutputArchive
from repro.sim.cluster import Cluster, HAWK
from repro.sim.engine import Engine

_settings = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ---------------------------------------------------------------- engine


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
@_settings
def test_engine_time_monotone_and_complete(delays):
    eng = Engine()
    fired = []
    for d in delays:
        eng.schedule(d, lambda d=d: fired.append(eng.now))
    eng.run()
    assert len(fired) == len(delays)
    assert fired == sorted(fired)
    assert eng.now == max(delays)


# ----------------------------------------------------------- serialization

_json_like = st.recursive(
    st.none()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda inner: st.lists(inner, max_size=4)
    | st.dictionaries(st.text(max_size=5), inner, max_size=4),
    max_leaves=12,
)


@given(_json_like)
@_settings
def test_archive_roundtrip_property(value):
    data = BufferOutputArchive().store(value).bytes()
    assert BufferInputArchive(data).load() == value


@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=8),
    st.booleans(),
)
@_settings
def test_tile_splitmd_roundtrip_property(rows, cols, synthetic):
    if synthetic:
        t = MatrixTile.synthetic(rows, cols)
    else:
        rng = np.random.default_rng(rows * 100 + cols)
        t = MatrixTile(rows, cols, rng.standard_normal((rows, cols)))
    clone = MatrixTile.splitmd_allocate(t.splitmd_metadata())
    payload = t.splitmd_payload()
    if payload is not None:
        clone.splitmd_fill(payload)
    assert clone == t or clone.allclose(t)


# ------------------------------------------------------------ distribution


@given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=12))
@_settings
def test_block_cyclic_is_partition(nranks, nt):
    p, q = grid_dims(nranks)
    assert p * q == nranks
    dist = BlockCyclicDistribution(p, q)
    seen = {}
    for r in range(nranks):
        for ij in dist.tiles_of_rank(r, nt):
            assert ij not in seen
            seen[ij] = r
    assert len(seen) == nt * nt
    # tiles per rank balanced within (ceil/floor) bounds
    counts = [sum(1 for _ in dist.tiles_of_rank(r, nt)) for r in range(nranks)]
    assert max(counts) - min(counts) <= (nt % p + 1) * nt


@given(st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=15),
       st.integers(min_value=9, max_value=20))
@_settings
def test_group_to_target_partition(units, target):
    t = IrregularTiling.group_to_target(units, target)
    assert sum(t.sizes) == sum(units)
    assert all(s <= target for s in t.sizes)


# -------------------------------------------------------------- streaming


@given(st.integers(min_value=1, max_value=12), st.integers(min_value=1, max_value=4))
@_settings
def test_stream_fires_exactly_once_with_all_messages(nmsgs, nranks):
    e = ttg.Edge("s")
    fired = []

    def src(key, outs):
        for i in range(nmsgs):
            outs.send(0, "k", i + 1)

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    C = ttg.make_tt(lambda k, total, outs: fired.append(total), [e], [],
                    keymap=lambda k: nranks - 1)
    C.set_input_reducer(0, lambda a, b: a + b, size=nmsgs)
    ex = ttg.TaskGraph([S, C]).executable(ParsecBackend(Cluster(HAWK, nranks)))
    ex.invoke(S, 0)
    ex.fence()
    assert fired == [nmsgs * (nmsgs + 1) // 2]


# ------------------------------------------------------------ multiwavelet


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=2),
       st.integers(min_value=0, max_value=10**6))
@_settings
def test_filter_roundtrip_and_parseval_property(k, d, seed):
    mw = Multiwavelet(k, d)
    rng = np.random.default_rng(seed)
    kids = [rng.standard_normal((k,) * d) for _ in range(2**d)]
    s, sd = mw.filter(kids)
    # Parseval
    assert np.isclose(sum(np.sum(c * c) for c in kids), np.sum(sd * sd))
    # round trip
    back = mw.unfilter(sd)
    for a, b in zip(kids, back):
        assert np.allclose(a, b)
    # scaling corner is s
    assert np.allclose(sd[(slice(0, k),) * d], s)


# ----------------------------------------------------------------- FW-APSP


@given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=10**6))
@_settings
def test_fw_reference_fixed_point_and_triangle(n, seed):
    rng = np.random.default_rng(seed)
    w = rng.uniform(0, 10, (n, n))
    np.fill_diagonal(w, 0.0)
    d = fw_reference(w)
    # idempotent
    assert np.allclose(fw_reference(d), d)
    # triangle inequality
    for i in range(n):
        for j in range(n):
            assert d[i, j] <= d[i, 0] + d[0, j] + 1e-9
    # never longer than direct edge
    assert np.all(d <= w + 1e-12)


# -------------------------------------------------------------- termination


@given(st.data())
@_settings
def test_dijkstra_scholten_always_terminates(data):
    n = data.draw(st.integers(min_value=1, max_value=5))
    done = []
    ds = DijkstraScholten(n, on_terminate=lambda: done.append(True))
    ds.start(0)
    active = {0}
    # random message exchanges from active nodes
    nsteps = data.draw(st.integers(min_value=0, max_value=20))
    for _ in range(nsteps):
        src = data.draw(st.sampled_from(sorted(active)))
        dst = data.draw(st.integers(min_value=0, max_value=n - 1))
        ds.send(src, dst)
        ds.deliver(src, dst)
        active.add(dst)
    for rank in sorted(active, reverse=True):
        ds.idle(rank)
    assert done == [True]
    assert all(d == 0 for d in ds.deficit)
