"""Analysis: critical path (hand-built diamond + real Cholesky), summaries."""

import numpy as np
import pytest

from repro.apps.cholesky import cholesky_ttg
from repro.linalg import BlockCyclicDistribution, TiledMatrix, spd_matrix
from repro.runtime import ParsecBackend
from repro.sim.cluster import Cluster, HAWK
from repro.telemetry.analyze import (
    compare_counters,
    critical_path,
    dep_edges,
    format_compare,
    idle_breakdown,
    report,
    summary_by_template,
    task_nodes,
)
from repro.telemetry.events import EventBus, TID_RT, Telemetry


def _task(bus, template, key, start, end, rank=0, tid=0):
    bus.complete(template, rank, tid, start, end, cat="task",
                 args={"key": repr(key), "template": template})


def _dep(bus, src, dst):
    bus.instant("dep", 0, TID_RT, cat="dep", src=src, dst=dst)


def diamond_bus():
    """A -> (B, C) -> D; B is the long arm."""
    bus = EventBus(capacity=None)
    _task(bus, "A", 0, 0.0, 1.0)
    _task(bus, "B", 0, 1.0, 3.0, tid=1)
    _task(bus, "C", 0, 1.0, 2.0, tid=2)
    _task(bus, "D", 0, 3.0, 4.0)
    _dep(bus, "A[0]", "B[0]")
    _dep(bus, "A[0]", "C[0]")
    _dep(bus, "B[0]", "D[0]")
    _dep(bus, "C[0]", "D[0]")
    return bus


def test_critical_path_on_diamond():
    cp = critical_path(diamond_bus())
    assert cp.labels() == ["A[0]", "B[0]", "D[0]"]
    assert cp.compute_time == pytest.approx(4.0)
    assert cp.makespan == pytest.approx(4.0)
    assert cp.fraction == pytest.approx(1.0)
    assert "critical path: 3 tasks" in cp.report()


def test_critical_path_empty_bus():
    cp = critical_path(EventBus(capacity=None))
    assert cp.nodes == [] and cp.length == 0 and cp.fraction == 0.0


def test_critical_path_ignores_unmatched_and_backward_edges():
    bus = diamond_bus()
    _dep(bus, "GHOST[9]", "D[0]")       # producer never executed
    _dep(bus, "D[0]", "A[0]")           # violates start order: dropped
    cp = critical_path(bus)
    assert cp.labels() == ["A[0]", "B[0]", "D[0]"]


def test_task_nodes_and_dep_edges_extraction():
    bus = diamond_bus()
    nodes = task_nodes(bus)
    assert set(nodes) == {"A[0]", "B[0]", "C[0]", "D[0]"}
    assert nodes["B[0]"].duration == pytest.approx(2.0)
    assert ("A[0]", "B[0]") in dep_edges(bus)


def test_summary_by_template_ordering():
    bus = diamond_bus()
    _task(bus, "B", 1, 4.0, 6.0, tid=1)
    rows = summary_by_template(bus)
    assert rows[0].template == "B"          # largest total first
    assert rows[0].count == 2
    assert rows[0].total == pytest.approx(4.0)
    assert rows[0].mean == pytest.approx(2.0)


def test_idle_breakdown_workers_and_utilization():
    bus = diamond_bus()   # tids 0..2 used on rank 0 -> 3 workers inferred
    rows = idle_breakdown(bus)
    assert len(rows) == 1
    r = rows[0]
    assert r.rank == 0 and r.workers == 3
    assert r.busy == pytest.approx(5.0)
    assert r.idle == pytest.approx(3 * 4.0 - 5.0)
    assert r.utilization == pytest.approx(5.0 / 12.0)


def test_report_mentions_templates_and_ranks():
    text = report(diamond_bus())
    assert "events: 8" in text
    assert "template" in text and "rank" in text


@pytest.fixture(scope="module")
def cholesky_path():
    n, b, nodes = 256, 64, 2
    a = spd_matrix(n, seed=3)
    A = TiledMatrix.from_dense(
        a, b, BlockCyclicDistribution.for_ranks(nodes), lower_only=True
    )
    tel = Telemetry(nranks=nodes, capacity=None)
    backend = ParsecBackend(Cluster(HAWK, nodes), telemetry=tel)
    res = cholesky_ttg(A, backend)
    assert np.allclose(np.tril(res.L.to_dense()), np.linalg.cholesky(a))
    return critical_path(tel)


def test_cholesky_critical_path_matches_known_chain(cholesky_path):
    """The dependency chain POTRF(k) -> TRSM -> {GEMM,SYRK} -> POTRF(k+1)
    must dominate: the path starts at POTRF[0], walks the factorization
    in k order, and consists of the four kernel templates."""
    cp = cholesky_path
    templates = [n.template for n in cp.nodes]
    assert cp.length >= 4
    assert "POTRF" in templates and "TRSM" in templates
    assert "GEMM" in templates or "SYRK" in templates
    kernel = [n for n in cp.nodes if n.template in ("POTRF", "TRSM", "SYRK", "GEMM")]
    assert kernel[0].template == "POTRF" and kernel[0].key == "0"
    potrf_ks = [int(n.key) for n in cp.nodes if n.template == "POTRF"]
    assert potrf_ks == sorted(potrf_ks)
    # Consecutive path nodes are really time-ordered (producer first).
    for a_, b_ in zip(cp.nodes, cp.nodes[1:]):
        assert a_.start <= b_.start
    assert 0.0 < cp.fraction <= 1.0


def test_compare_counters_and_format():
    a = {"counters": {"tasks": {"value": 3.0}, "old": {"value": 1.0},
                      "h": {"total": 5.0, "count": 2}}}
    b = {"counters": {"tasks": {"value": 5.0}, "new": {"value": 2.0},
                      "h": {"total": 5.0, "count": 2}}}
    rows = compare_counters(a, b)
    as_map = {k: (va, vb, d) for k, va, vb, d in rows}
    assert as_map["tasks"] == (3.0, 5.0, 2.0)
    assert as_map["old"] == (1.0, 0.0, -1.0)
    assert as_map["new"] == (0.0, 2.0, 2.0)
    assert as_map["h"] == (5.0, 5.0, 0.0)
    text = format_compare(rows, only_changed=True)
    assert "tasks" in text and "h" not in text.split("\n", 1)[1]


def test_report_on_empty_bus():
    text = report(EventBus(capacity=None))
    assert "events: 0" in text and "WARNING" not in text


def test_report_warns_loudly_on_dropped_events():
    bus = EventBus(nranks=1, capacity=4)
    for i in range(20):
        _task(bus, "T", i, float(i), float(i) + 0.5)
    assert sum(bus.dropped) == 16
    text = report(bus)
    assert "WARNING: 16 event(s) evicted" in text
    assert "rank 0: 16" in text
    assert "truncated window" in text and "--capacity" in text


def test_idle_breakdown_zero_task_rank():
    # Rank 1 only communicates; it must still appear, with comm time,
    # a defensive 1-worker floor and zero utilization.
    bus = diamond_bus()
    bus.complete("am", 1, TID_RT, 0.0, 0.5, cat="comm",
                 args={"nbytes": 64})
    rows = {r.rank: r for r in idle_breakdown(bus)}
    assert set(rows) == {0, 1}
    r1 = rows[1]
    assert r1.busy == 0.0 and r1.workers == 1
    assert r1.comm == pytest.approx(0.5)
    assert r1.utilization == 0.0
    assert r1.idle == pytest.approx(4.0)    # 1 worker * diamond makespan


def test_idle_breakdown_empty_bus():
    assert idle_breakdown(EventBus(capacity=None)) == []


def test_compare_counters_missing_histogram_fields():
    # Snapshots without value/total (hand-written or pre-v1): fall back to
    # count, then 0.0 -- never KeyError.
    a = {"counters": {"h": {"count": 4}, "weird": {"p50": 1.0}}}
    b = {"counters": {"h": {"count": 6}}}
    as_map = {k: (va, vb, d) for k, va, vb, d in compare_counters(a, b)}
    assert as_map["h"] == (4.0, 6.0, 2.0)
    assert as_map["weird"] == (0.0, 0.0, 0.0)


def test_summary_and_critical_path_on_comm_only_bus():
    bus = EventBus(capacity=None)
    bus.complete("am", 0, TID_RT, 0.0, 1.0, cat="comm", args={"nbytes": 8})
    assert summary_by_template(bus) == []
    cp = critical_path(bus)
    assert cp.length == 0 and cp.makespan == pytest.approx(1.0)
