"""Correctness and structure tests for the FW-APSP TTG."""

import numpy as np
import pytest
from scipy.sparse.csgraph import floyd_warshall as scipy_fw

from repro.apps.floydwarshall import floyd_warshall_ttg, fw_reference
from repro.linalg import BlockCyclicDistribution, TiledMatrix, random_weight_matrix
from repro.runtime import MadnessBackend, ParsecBackend
from repro.sim.cluster import Cluster, HAWK


def solve(n, b, nodes, backend_cls=ParsecBackend, seed=0, **kw):
    w = random_weight_matrix(n, seed=seed)
    dist = BlockCyclicDistribution.for_ranks(nodes)
    W = TiledMatrix.from_dense(w, b, dist)
    res = floyd_warshall_ttg(W, backend_cls(Cluster(HAWK, nodes)), **kw)
    return w, res


@pytest.mark.parametrize("n,b,nodes", [
    (16, 16, 1),    # single tile
    (32, 16, 1),
    (48, 16, 3),
    (64, 16, 4),
    (40, 16, 4),    # ragged last tile
    (64, 32, 2),
])
def test_matches_reference(n, b, nodes):
    w, res = solve(n, b, nodes)
    assert np.allclose(res.W.to_dense(), fw_reference(w))


def test_reference_matches_scipy():
    w = random_weight_matrix(48, seed=9)
    assert np.allclose(fw_reference(w), scipy_fw(w))


def test_madness_backend():
    w, res = solve(48, 16, 4, MadnessBackend)
    assert np.allclose(res.W.to_dense(), fw_reference(w))


def test_task_counts():
    n, b = 64, 16  # nt = 4
    _, res = solve(n, b, 2)
    nt = 4
    assert res.task_counts["FW_A"] == nt
    assert res.task_counts["FW_B"] == nt * (nt - 1)
    assert res.task_counts["FW_C"] == nt * (nt - 1)
    assert res.task_counts["FW_D"] == nt * (nt - 1) ** 2
    assert res.task_counts["RESULT"] == nt * nt


def test_input_not_mutated():
    w = random_weight_matrix(32, seed=1)
    W = TiledMatrix.from_dense(w, 16, BlockCyclicDistribution(1, 2))
    before = W.to_dense().copy()
    floyd_warshall_ttg(W, ParsecBackend(Cluster(HAWK, 2)))
    assert np.array_equal(W.to_dense(), before)


def test_priorities_off():
    w, res = solve(48, 16, 2, priorities=False)
    assert np.allclose(res.W.to_dense(), fw_reference(w))


def test_idempotent_weights():
    """Applying FW to an already-shortest matrix changes nothing."""
    w = fw_reference(random_weight_matrix(32, seed=5))
    W = TiledMatrix.from_dense(w, 16, BlockCyclicDistribution(2, 1))
    res = floyd_warshall_ttg(W, ParsecBackend(Cluster(HAWK, 2)))
    assert np.allclose(res.W.to_dense(), w)


def test_synthetic_scaling_run():
    W = TiledMatrix(1024, 128, BlockCyclicDistribution.for_ranks(4), synthetic=True)
    res = floyd_warshall_ttg(W, ParsecBackend(Cluster(HAWK.with_workers(4), 4)))
    assert res.makespan > 0 and res.gflops > 0


def test_triangle_inequality_holds():
    w, res = solve(32, 16, 2, seed=11)
    d = res.W.to_dense()
    n = d.shape[0]
    rng = np.random.default_rng(0)
    for _ in range(200):
        i, j, k = rng.integers(0, n, 3)
        assert d[i, j] <= d[i, k] + d[k, j] + 1e-9
