"""Additional PTG front-end coverage: maps, costs, accessors, errors."""

import pytest

from repro.core.exceptions import GraphConstructionError
from repro.core.ptg import PTG, Flow, TaskClass
from repro.runtime import ParsecBackend
from repro.sim.cluster import Cluster, HAWK


def backend(n=2):
    return ParsecBackend(Cluster(HAWK, n))


def test_ptg_cost_and_priomap_forwarded():
    tc = TaskClass(
        "T",
        kernel=lambda k, d: None,
        flows=[Flow("x")],
        keymap=lambda k: 0,
        priomap=lambda k: 7 * k,
        cost=lambda k, *a: 123.0,
    )
    ptg = PTG([tc])
    tt = ptg.template("T")
    assert tt.priority(3) == 21
    assert tt.cost(0, [None]) == (123.0, 0.0)


def test_ptg_cost_charges_virtual_time():
    tc = TaskClass(
        "T",
        kernel=lambda k, d: None,
        flows=[Flow("x")],
        keymap=lambda k: 0,
        cost=lambda k, *a: 25.0e9,  # 1 second on one Hawk worker
    )
    ptg = PTG([tc])
    be = backend(1)
    ex = ptg.executable(be)
    ptg.inject(ex, "T", "x", 0, None)
    t = ex.fence()
    assert t >= 1.0


def test_ptg_inject_unknown_flow():
    tc = TaskClass("T", kernel=lambda k, d: None, flows=[Flow("x")],
                   keymap=lambda k: 0)
    ptg = PTG([tc])
    ex = ptg.executable(backend(1))
    with pytest.raises(GraphConstructionError):
        ptg.inject(ex, "T", "nope", 0, None)


def test_ptg_template_accessor():
    tc = TaskClass("NAMED", kernel=lambda k, d: None, flows=[Flow("x")])
    ptg = PTG([tc])
    assert ptg.template("NAMED").name == "NAMED"
    with pytest.raises(KeyError):
        ptg.template("OTHER")


def test_ptg_dest_with_unknown_flow_of_known_class():
    got = []
    a = TaskClass(
        "A",
        kernel=lambda k, d: None,
        flows=[Flow("x", dests=lambda k: [("B", k, "wrong_flow")])],
        keymap=lambda k: 0,
    )
    b = TaskClass("B", kernel=lambda k, d: got.append(k), flows=[Flow("y")],
                  keymap=lambda k: 0)
    ptg = PTG([a, b])
    ex = ptg.executable(backend(1))
    ptg.inject(ex, "A", "x", 0, 1)
    with pytest.raises(GraphConstructionError):
        ex.fence()
    assert got == []


def test_ptg_kernel_sees_latest_flow_values():
    seen = {}

    def kern_a(key, data):
        data["x"] = data["x"] + 100

    def kern_b(key, data):
        seen[key] = dict(data)

    a = TaskClass("A", kernel=kern_a,
                  flows=[Flow("x", dests=lambda k: [("B", k, "x")])],
                  keymap=lambda k: 0)
    b = TaskClass("B", kernel=kern_b, flows=[Flow("x"), Flow("y")],
                  keymap=lambda k: 1)
    ptg = PTG([a, b])
    ex = ptg.executable(backend(2))
    ptg.inject(ex, "A", "x", 5, 1)
    ptg.inject(ex, "B", "y", 5, "side-input")
    ex.fence()
    assert seen == {5: {"x": 101, "y": "side-input"}}
