"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, EngineError


def test_runs_in_time_order():
    eng = Engine()
    hits = []
    eng.schedule(2.0, hits.append, "late")
    eng.schedule(1.0, hits.append, "early")
    eng.schedule(3.0, hits.append, "last")
    eng.run()
    assert hits == ["early", "late", "last"]


def test_ties_break_by_schedule_order():
    eng = Engine()
    hits = []
    for i in range(10):
        eng.schedule(1.0, hits.append, i)
    eng.run()
    assert hits == list(range(10))


def test_clock_advances_to_event_time():
    eng = Engine()
    eng.schedule(5.0, lambda: None)
    eng.run()
    assert eng.now == 5.0


def test_clock_does_not_go_backward():
    eng = Engine()
    times = []
    eng.schedule(1.0, lambda: times.append(eng.now))
    eng.schedule(1.0, lambda: times.append(eng.now))
    eng.schedule(2.0, lambda: times.append(eng.now))
    eng.run()
    assert times == sorted(times)


def test_schedule_during_run():
    eng = Engine()
    hits = []

    def chain(n):
        hits.append(n)
        if n < 3:
            eng.schedule(1.0, chain, n + 1)

    eng.schedule(0.0, chain, 0)
    eng.run()
    assert hits == [0, 1, 2, 3]
    assert eng.now == 3.0


def test_zero_delay_events_run_after_current():
    eng = Engine()
    hits = []

    def outer():
        eng.schedule(0.0, hits.append, "inner")
        hits.append("outer")

    eng.schedule(1.0, outer)
    eng.run()
    assert hits == ["outer", "inner"]


def test_schedule_in_past_raises():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run()
    with pytest.raises(EngineError):
        eng.schedule_at(0.5, lambda: None)


def test_negative_delay_raises():
    eng = Engine()
    with pytest.raises(EngineError):
        eng.schedule(-1.0, lambda: None)


def test_cancel_skips_event():
    eng = Engine()
    hits = []
    ev = eng.schedule(1.0, hits.append, "cancelled")
    eng.schedule(2.0, hits.append, "kept")
    ev.cancel()
    eng.run()
    assert hits == ["kept"]


def test_empty_accounts_for_cancelled():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    assert not eng.empty()
    ev.cancel()
    assert eng.empty()


def test_run_until_stops_clock():
    eng = Engine()
    hits = []
    eng.schedule(1.0, hits.append, 1)
    eng.schedule(5.0, hits.append, 5)
    eng.run(until=2.0)
    assert hits == [1]
    assert eng.now == 2.0
    eng.run()
    assert hits == [1, 5]


def test_run_max_events():
    eng = Engine()
    hits = []
    for i in range(5):
        eng.schedule(float(i + 1), hits.append, i)
    eng.run(max_events=2)
    assert hits == [0, 1]


def test_events_processed_counter():
    eng = Engine()
    for i in range(4):
        eng.schedule(1.0, lambda: None)
    eng.run()
    assert eng.events_processed == 4


def test_step_returns_false_when_empty():
    eng = Engine()
    assert eng.step() is False
    eng.schedule(1.0, lambda: None)
    assert eng.step() is True
    assert eng.step() is False


def test_reset():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run()
    eng.reset()
    assert eng.now == 0.0
    assert eng.empty()
    assert eng.events_processed == 0


def test_reentrant_run_raises():
    eng = Engine()

    def recurse():
        eng.run()

    eng.schedule(1.0, recurse)
    with pytest.raises(EngineError):
        eng.run()


def test_determinism_same_schedule_same_trace():
    def build():
        eng = Engine()
        hits = []
        for i in range(50):
            eng.schedule((i * 7) % 5 * 0.25, hits.append, i)
        eng.run()
        return hits

    assert build() == build()


def test_args_passed_through():
    eng = Engine()
    out = []
    eng.schedule(1.0, lambda a, b, c: out.append(a + b + c), 1, 2, 3)
    eng.run()
    assert out == [6]
