"""CLI: record/report/export/critical-path/compare/validate subcommands."""

import io
import json
import textwrap

import pytest

from repro.telemetry.cli import main


SCRIPT = textwrap.dedent(
    """
    from repro import core as ttg
    from repro.runtime import ParsecBackend
    from repro.sim.cluster import Cluster, HAWK

    e = ttg.Edge("x", key_type=int, value_type=int)

    def src(key, outs):
        for k in range(6):
            outs.send(0, k, k)

    def snk(key, v, outs):
        print("got", key)

    A = ttg.make_tt(src, [], [e], name="A", keymap=lambda k: 0)
    B = ttg.make_tt(snk, [e], [], name="B", keymap=lambda k: k % 2,
                    cost=lambda k, v: 100.0)
    ex = ttg.TaskGraph([A, B], name="pipeline").executable(
        ParsecBackend(Cluster(HAWK, 2)))
    ex.invoke(A, 0)
    ex.fence()
    """
)


@pytest.fixture()
def script(tmp_path):
    p = tmp_path / "run_pipeline.py"
    p.write_text(SCRIPT)
    return str(p)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), stream=out)
    return code, out.getvalue()


def test_record_exports_all_artifacts(script, tmp_path):
    trace = tmp_path / "trace.json"
    jsonl = tmp_path / "events.jsonl"
    counters = tmp_path / "counters.json"
    code, text = run_cli(
        "record", script, "--export", str(trace), "--jsonl", str(jsonl),
        "--counters", str(counters), "--critical-path", "--report",
    )
    assert code == 0
    assert "1 run(s)" in text
    assert "pipeline@parsec(nranks=2)" in text
    assert "valid Chrome trace" in text
    assert "critical path:" in text
    assert trace.exists() and jsonl.exists() and counters.exists()
    data = json.loads(trace.read_text())
    assert any(e.get("name") == "A" for e in data["traceEvents"])


def test_record_verbose_shows_script_stdout(script):
    code, text = run_cli("record", script, "--verbose")
    assert code == 0
    assert "| got" in text


def test_record_list_and_graph_selection(script):
    code, text = run_cli("record", script, "--list")
    assert code == 0 and "[0]" in text
    code, text = run_cli("record", script, "--graph", "5")
    assert code == 1 and "out of range" in text


def test_record_crashing_script(tmp_path):
    p = tmp_path / "boom.py"
    p.write_text("raise RuntimeError('nope')\n")
    code, text = run_cli("record", str(p))
    assert code == 1 and "script failed" in text and "nope" in text


def test_record_script_with_no_graphs(tmp_path):
    p = tmp_path / "empty.py"
    p.write_text("x = 1\n")
    code, text = run_cli("record", str(p), "--critical-path")
    assert code == 1 and "nothing recorded" in text


def test_report_and_critical_path_from_jsonl(script, tmp_path):
    jsonl = tmp_path / "ev.jsonl"
    code, _ = run_cli("record", script, "--jsonl", str(jsonl))
    assert code == 0
    code, text = run_cli("report", str(jsonl))
    assert code == 0 and "template" in text and "B" in text
    code, text = run_cli("critical-path", str(jsonl))
    assert code == 0
    assert text.splitlines()[0].startswith("critical path:")
    assert "A[0]" in text


def test_export_and_validate_round_trip(script, tmp_path):
    jsonl = tmp_path / "ev.jsonl"
    trace = tmp_path / "out.json"
    run_cli("record", script, "--jsonl", str(jsonl))
    code, text = run_cli("export", str(jsonl), "-o", str(trace))
    assert code == 0 and "wrote" in text
    code, text = run_cli("validate", str(trace))
    assert code == 0 and "valid Chrome trace" in text


def test_validate_rejects_bad_trace(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
    code, text = run_cli("validate", str(bad))
    assert code == 1 and "name" in text


def test_compare_counters(script, tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    run_cli("record", script, "--counters", str(a))
    run_cli("record", script, "--counters", str(b))
    code, text = run_cli("compare", str(a), str(b))
    assert code == 0
    assert "tasks{" in text
    code, text = run_cli("compare", str(a), str(b), "--only-changed")
    assert code == 0
    # Identical runs: nothing but the deprecation note (compare is now a
    # thin alias over `telemetry diff`) and the header survives.
    lines = text.strip().splitlines()
    assert "deprecated" in lines[0]
    assert len(lines) == 2


def test_no_events_mode_records_metrics_only(script, tmp_path):
    counters = tmp_path / "c.json"
    code, text = run_cli("record", script, "--no-events",
                         "--counters", str(counters))
    assert code == 0 and "0 events" in text
    data = json.loads(counters.read_text())
    assert any(k.startswith("tasks{") for k in data["counters"])


def test_validate_fails_on_truncated_recording(script, tmp_path):
    trace = tmp_path / "trunc.json"
    code, _ = run_cli("record", script, "--capacity", "3",
                      "--export", str(trace))
    assert code == 0
    data = json.loads(trace.read_text())
    assert sum(data["otherData"]["dropped"]) > 0

    code, text = run_cli("validate", str(trace))
    assert code == 1
    assert "evicted" in text and "--allow-drops" in text

    code, text = run_cli("validate", str(trace), "--allow-drops")
    assert code == 0 and "drops allowed" in text


def test_validate_accepts_complete_recording_without_flag(script, tmp_path):
    trace = tmp_path / "full.json"
    run_cli("record", script, "--export", str(trace))
    code, text = run_cli("validate", str(trace))
    assert code == 0 and "valid Chrome trace" in text and "allowed" not in text


def test_report_warns_on_drops_from_capacity_limited_run(script, tmp_path):
    jsonl = tmp_path / "ev.jsonl"
    code, text = run_cli("record", script, "--capacity", "3",
                         "--jsonl", str(jsonl), "--report")
    assert code == 0
    assert "WARNING" in text and "evicted" in text
