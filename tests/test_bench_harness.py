"""Tests for the bench harness (series, tables, node lists)."""

from repro.bench.harness import Series, geometric_nodes, print_series, print_table
from repro.bench.figures import table1_configs


def test_series_basics():
    s = Series("x")
    s.add(1, 10.0)
    s.add(2, 20.0)
    assert s.xs == [1, 2] and s.ys == [10.0, 20.0]
    assert s.y_at(2) == 20.0
    assert s.y_at(3) is None


def test_series_monotone():
    up = Series("up", [(1, 1.0), (2, 2.0), (4, 3.9)])
    assert up.monotone_increasing()
    down = Series("down", [(1, 2.0), (2, 1.0)])
    assert not down.monotone_increasing()
    wiggle = Series("w", [(1, 1.0), (2, 0.99)])
    assert wiggle.monotone_increasing(tol=0.02)


def test_geometric_nodes():
    assert geometric_nodes(16) == [1, 2, 4, 8, 16]
    assert geometric_nodes(20) == [1, 2, 4, 8, 16]
    assert geometric_nodes(64, start=8) == [8, 16, 32, 64]
    assert geometric_nodes(1) == [1]


def test_print_table(capsys):
    print_table("T", ["a", "bb"], [[1, 2], [30, 40]])
    out = capsys.readouterr().out
    assert "== T ==" in out and "30" in out and "bb" in out


def test_print_series(capsys):
    s1 = Series("one", [(1, 1.5), (2, 2.5)])
    s2 = Series("two", [(2, 9.0)])
    print_series("F", "n", [s1, s2])
    out = capsys.readouterr().out
    assert "one" in out and "two" in out
    assert "9.0" in out
    assert "-" in out  # missing point marker


def test_table1_configs():
    rows = table1_configs()
    assert {r["machine"] for r in rows} == {"hawk", "seawulf"}
    for r in rows:
        assert r["workers/node"] > 0
        assert r["net GB/s"] > 0


def _two_captured_runs():
    """Two tiny telemetered 2-rank runs via the capture() recorder."""
    from repro import core as ttg
    from repro.runtime import ParsecBackend
    from repro.sim.cluster import Cluster, HAWK
    from repro.telemetry.adapter import capture

    def src(key, outs):
        for k in range(4):
            outs.send(0, k, k)

    def snk(key, v, outs):
        pass

    with capture(events=True) as runs:
        for _ in range(2):
            e = ttg.Edge("x", key_type=int, value_type=int)
            A = ttg.make_tt(src, [], [e], name="A", keymap=lambda k: 0)
            B = ttg.make_tt(snk, [e], [], name="B", keymap=lambda k: k % 2)
            ex = ttg.TaskGraph([A, B]).executable(
                ParsecBackend(Cluster(HAWK, 2)))
            ex.invoke(A, 0)
            ex.fence()
    return runs


def test_merged_event_bus_namespaces_ranks():
    from repro.bench.harness import merged_event_bus

    runs = _two_captured_runs()
    assert len(runs) == 2
    merged = merged_event_bus(runs)
    assert merged.nranks == 4      # 2 runs x 2 ranks, offset not aliased
    ranks = {ev.rank for ev in merged.events()}
    assert ranks & {0, 1} and ranks & {2, 3}
    assert len(merged) == sum(len(r.telemetry.bus) for r in runs)


def test_write_telemetry_bundle_emits_all_three_files(tmp_path):
    import json

    from repro.bench.harness import write_telemetry_bundle
    from repro.telemetry.export import read_jsonl, validate_chrome_trace

    runs = _two_captured_runs()
    counters = tmp_path / "bench.json"
    written = write_telemetry_bundle(str(counters), runs, meta={"x": 1})
    assert set(written) == {"counters", "trace", "jsonl"}
    assert written["trace"] == str(tmp_path / "bench.trace.json")
    assert written["jsonl"] == str(tmp_path / "bench.jsonl")

    assert "counters" in json.loads(counters.read_text())
    trace = json.loads((tmp_path / "bench.trace.json").read_text())
    assert validate_chrome_trace(trace) == []
    bus = read_jsonl(written["jsonl"])
    assert len(bus) > 0 and bus.nranks == 4


def test_write_telemetry_bundle_counters_only_without_events(tmp_path):
    from repro.bench.harness import write_telemetry_bundle

    class FakeTel:
        def __init__(self):
            from repro.telemetry.events import Telemetry
            self.telemetry = Telemetry(events=False)
            self.label = "fake"

    written = write_telemetry_bundle(str(tmp_path / "c.json"), [FakeTel()])
    assert set(written) == {"counters"}
