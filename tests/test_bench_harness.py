"""Tests for the bench harness (series, tables, node lists)."""

from repro.bench.harness import Series, geometric_nodes, print_series, print_table
from repro.bench.figures import table1_configs


def test_series_basics():
    s = Series("x")
    s.add(1, 10.0)
    s.add(2, 20.0)
    assert s.xs == [1, 2] and s.ys == [10.0, 20.0]
    assert s.y_at(2) == 20.0
    assert s.y_at(3) is None


def test_series_monotone():
    up = Series("up", [(1, 1.0), (2, 2.0), (4, 3.9)])
    assert up.monotone_increasing()
    down = Series("down", [(1, 2.0), (2, 1.0)])
    assert not down.monotone_increasing()
    wiggle = Series("w", [(1, 1.0), (2, 0.99)])
    assert wiggle.monotone_increasing(tol=0.02)


def test_geometric_nodes():
    assert geometric_nodes(16) == [1, 2, 4, 8, 16]
    assert geometric_nodes(20) == [1, 2, 4, 8, 16]
    assert geometric_nodes(64, start=8) == [8, 16, 32, 64]
    assert geometric_nodes(1) == [1]


def test_print_table(capsys):
    print_table("T", ["a", "bb"], [[1, 2], [30, 40]])
    out = capsys.readouterr().out
    assert "== T ==" in out and "30" in out and "bb" in out


def test_print_series(capsys):
    s1 = Series("one", [(1, 1.5), (2, 2.5)])
    s2 = Series("two", [(2, 9.0)])
    print_series("F", "n", [s1, s2])
    out = capsys.readouterr().out
    assert "one" in out and "two" in out
    assert "9.0" in out
    assert "-" in out  # missing point marker


def test_table1_configs():
    rows = table1_configs()
    assert {r["machine"] for r in rows} == {"hawk", "seawulf"}
    for r in rows:
        assert r["workers/node"] > 0
        assert r["net GB/s"] > 0
