"""Event bus invariants: span nesting, ring capacity, disabled no-op path."""

import pytest

from repro.telemetry.events import (
    CounterEvent,
    EventBus,
    InstantEvent,
    SpanEvent,
    Telemetry,
    TelemetryError,
    TID_AM,
)


def make_clock(times):
    it = iter(times)
    last = [0.0]

    def clock():
        try:
            last[0] = next(it)
        except StopIteration:
            pass
        return last[0]

    return clock


def test_begin_end_produces_span_with_times():
    bus = EventBus(nranks=1, capacity=None, clock=make_clock([1.0, 3.5]))
    h = bus.begin("work", 0, 0, cat="task", key="k")
    ev = bus.end(h)
    assert isinstance(ev, SpanEvent)
    assert (ev.start, ev.end) == (1.0, 3.5)
    assert ev.duration == pytest.approx(2.5)
    assert ev.args == {"key": "k"}


def test_lifo_nesting_enforced_per_timeline():
    bus = EventBus(capacity=None)
    outer = bus.begin("outer", 0, 0)
    inner = bus.begin("inner", 0, 0)
    with pytest.raises(TelemetryError):
        bus.end(outer)  # inner still open on the same (rank, tid)
    bus.end(inner)
    bus.end(outer)
    assert [e.name for e in bus.spans()] == ["inner", "outer"]
    assert bus.open_spans() == []


def test_double_end_raises():
    bus = EventBus(capacity=None)
    h = bus.begin("x", 0)
    bus.end(h)
    with pytest.raises(TelemetryError):
        bus.end(h)


def test_different_timelines_are_independent():
    bus = EventBus(capacity=None)
    a = bus.begin("a", 0, 0)
    b = bus.begin("b", 0, 1)
    c = bus.begin("c", 1, 0)
    # Closing in arbitrary cross-timeline order is fine.
    bus.end(a)
    bus.end(c)
    bus.end(b)
    assert len(bus.spans()) == 3


def test_span_context_manager_closes_on_exception():
    bus = EventBus(capacity=None)
    with pytest.raises(ValueError):
        with bus.span("body", 0, 0):
            raise ValueError("boom")
    assert bus.open_spans() == []
    assert [e.name for e in bus.spans()] == ["body"]


def test_ring_capacity_evicts_and_counts_drops():
    bus = EventBus(nranks=1, capacity=4)
    for i in range(10):
        bus.instant(f"i{i}", 0)
    assert len(bus) == 4
    assert bus.dropped[0] == 6
    assert [e.name for e in bus.events()] == ["i6", "i7", "i8", "i9"]


def test_capacity_zero_records_nothing():
    bus = EventBus(nranks=2, capacity=0)
    assert not bus.enabled
    bus.instant("x", 0)
    bus.counter("q", 1, depth=3)
    bus.complete("s", 0, 0, 0.0, 1.0)
    assert len(bus) == 0
    assert bus.dropped == [0, 0]


def test_ranks_grow_on_demand():
    bus = EventBus(nranks=1, capacity=None)
    bus.instant("late", 5)
    assert bus.nranks == 6
    assert bus.events(rank=5)[0].name == "late"


def test_events_are_time_sorted_across_ranks():
    bus = EventBus(nranks=2, capacity=None)
    bus.complete("b", 1, 0, 2.0, 3.0)
    bus.complete("a", 0, 0, 0.0, 1.0)
    bus.instant("mid", 0)  # clock() = 0.0 default
    names = [e.name for e in bus.events()]
    assert names.index("a") < names.index("b")


def test_counter_and_instant_kinds():
    bus = EventBus(capacity=None)
    c = bus.counter("depth", 0, cpu=3.0)
    i = bus.instant("dep", 0, TID_AM, cat="dep", src="A", dst="B")
    assert isinstance(c, CounterEvent) and c.values == {"cpu": 3.0}
    assert isinstance(i, InstantEvent) and i.args["src"] == "A"
    assert bus.instants(cat="dep") == [i]
    assert bus.counters("depth") == [c]


def test_makespan_spans_and_instants():
    bus = EventBus(capacity=None)
    assert bus.makespan() == 0.0
    bus.complete("s", 0, 0, 1.0, 4.0)
    bus.instant("i", 0)
    assert bus.makespan() == 4.0


def test_telemetry_bundle_and_flow_ids():
    tel = Telemetry(nranks=2)
    assert tel.bus.nranks == 2
    f1, f2 = tel.bus.new_flow(), tel.bus.new_flow()
    assert f1 != f2
    tel.metrics.counter("x").inc()
    assert len(tel.metrics) == 1


def test_metrics_only_mode_disables_bus():
    tel = Telemetry(events=False)
    assert not tel.bus.enabled
    tel.bus.instant("x", 0)
    assert len(tel.bus) == 0


def test_backend_without_telemetry_records_nothing():
    """The default path: no Telemetry attached => hooks are no-ops."""
    from repro.runtime import ParsecBackend
    from repro.sim.cluster import Cluster, HAWK

    be = ParsecBackend(Cluster(HAWK, 2))
    assert be.telemetry is None
    assert be.comm.telemetry is None
    assert be.termination.telemetry is None
    done = []
    be.submit(0, lambda: done.append(1))
    be.send_control(0, 1, lambda: done.append(2))
    be.run()
    assert sorted(done) == [1, 2]
