"""Tests for the ``python -m repro.analysis`` CLI."""

import io
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.cli import lint_file, main, parse_waivers

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(ROOT, "examples")

FAST_EXAMPLES = ["quickstart.py", "sending_modes.py", "ptg_wavefront.py",
                 "spmd_pingpong.py"]


def run_cli(args):
    out = io.StringIO()
    code = main(args, stream=out)
    return code, out.getvalue()


# ----------------------------------------------------------------- examples


@pytest.mark.parametrize("example", FAST_EXAMPLES)
def test_examples_lint_clean(example):
    code, out = run_cli([os.path.join(EXAMPLES, example)])
    assert code == 0, out
    assert "FAIL" not in out
    assert "0 error(s), 0 warning(s)" in out


def test_quickstart_report_shape():
    code, out = run_cli([os.path.join(EXAMPLES, "quickstart.py")])
    assert code == 0
    assert out.startswith("== repro.analysis ==")
    assert "graphs: 1 (quickstart(nranks=4))" in out


def test_module_entry_point():
    env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis",
         os.path.join(EXAMPLES, "quickstart.py")],
        capture_output=True, text=True, env=env, cwd=ROOT, timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "ok: 0 error(s)" in proc.stdout


# ------------------------------------------------------------- broken scripts


BROKEN = textwrap.dedent(
    """
    from repro import core as ttg

    ei = ttg.Edge("ik", key_type=int)
    es = ttg.Edge("sk", key_type=str)
    noop = lambda key, *a: None
    a = ttg.make_tt(noop, [], [ei], name="A")
    b = ttg.make_tt(noop, [], [es], name="B")
    c = ttg.make_tt(noop, [ei, es], [], name="C")
    g = ttg.TaskGraph([a, b, c], name="broken")
    """
)


def test_broken_graph_fails_with_rule_id(tmp_path):
    script = tmp_path / "broken.py"
    script.write_text(BROKEN)
    code, out = run_cli([str(script)])
    assert code == 1
    assert "TTG003" in out
    assert "FAIL" in out
    assert "hint:" in out


def test_warning_only_passes_unless_strict(tmp_path):
    script = tmp_path / "dangle.py"
    script.write_text(textwrap.dedent(
        """
        from repro import core as ttg
        e = ttg.Edge("dangling", key_type=int)
        src = ttg.make_tt(lambda key, outs: None, [], [e], name="SRC")
        g = ttg.TaskGraph([src])
        """
    ))
    code, out = run_cli([str(script)])
    assert code == 0
    assert "TTG002" in out
    code, _ = run_cli(["--strict", str(script)])
    assert code == 1


def test_waiver_comment_suppresses_rule(tmp_path):
    script = tmp_path / "waived.py"
    script.write_text(BROKEN + "\n# ttg-lint: disable=TTG003\n")
    code, out = run_cli([str(script)])
    assert code == 0, out
    assert "waived: TTG003" in out
    assert "0 error(s)" in out


def test_crashing_script_fails(tmp_path):
    script = tmp_path / "crash.py"
    script.write_text("raise RuntimeError('boom')\n")
    code, out = run_cli([str(script)])
    assert code == 1
    assert "script failed to run" in out
    assert "boom" in out


def test_missing_file_fails():
    code, out = run_cli(["/no/such/file.py"])
    assert code == 1
    assert "cannot read" in out


# ------------------------------------------------------------------ plumbing


def test_parse_waivers():
    src = "# ttg-lint: disable=TTG001\nx = 1  # ttg-lint: disable=TTG004, TTG005\n"
    assert parse_waivers(src) == ("TTG001", "TTG004", "TTG005")
    assert parse_waivers("x = 1\n") == ()


def test_lint_file_records_bound_nranks(tmp_path):
    script = tmp_path / "bound.py"
    script.write_text(textwrap.dedent(
        """
        from repro import core as ttg
        from repro.runtime import ParsecBackend
        from repro.sim import Cluster, HAWK
        e = ttg.Edge("ab", key_type=int, value_type=int)
        a = ttg.make_tt(lambda key, outs: None, [], [e], name="A")
        b = ttg.make_tt(lambda key, v, outs: None, [e], [], name="B")
        g = ttg.TaskGraph([a, b], name="bound")
        ex = g.executable(ParsecBackend(Cluster(HAWK, 8)))
        """
    ))
    report = lint_file(str(script))
    assert report.crash is None
    assert len(report.graphs) == 1
    assert list(report.nranks.values()) == [8]
    assert report.findings == []


def test_script_stdout_is_captured_not_leaked(tmp_path, capsys):
    script = tmp_path / "noisy.py"
    script.write_text("print('SCRIPT NOISE')\n")
    code, out = run_cli([str(script)])
    assert code == 0
    assert "SCRIPT NOISE" not in out
    assert "SCRIPT NOISE" not in capsys.readouterr().out
    code, out = run_cli(["--verbose", str(script)])
    assert "SCRIPT NOISE" in out
