"""Tests for the ``python -m repro.analysis`` CLI."""

import io
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.cli import lint_file, main, parse_waivers

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(ROOT, "examples")

FAST_EXAMPLES = ["quickstart.py", "sending_modes.py", "ptg_wavefront.py",
                 "spmd_pingpong.py"]


def run_cli(args):
    out = io.StringIO()
    code = main(args, stream=out)
    return code, out.getvalue()


# ----------------------------------------------------------------- examples


@pytest.mark.parametrize("example", FAST_EXAMPLES)
def test_examples_lint_clean(example):
    code, out = run_cli([os.path.join(EXAMPLES, example)])
    assert code == 0, out
    assert "FAIL" not in out
    assert "0 error(s), 0 warning(s)" in out


def test_quickstart_report_shape():
    code, out = run_cli([os.path.join(EXAMPLES, "quickstart.py")])
    assert code == 0
    assert out.startswith("== repro.analysis ==")
    assert "graphs: 1 (quickstart(nranks=4))" in out


def test_module_entry_point():
    env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis",
         os.path.join(EXAMPLES, "quickstart.py")],
        capture_output=True, text=True, env=env, cwd=ROOT, timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "ok: 0 error(s)" in proc.stdout


# ------------------------------------------------------------- broken scripts


BROKEN = textwrap.dedent(
    """
    from repro import core as ttg

    ei = ttg.Edge("ik", key_type=int)
    es = ttg.Edge("sk", key_type=str)
    noop = lambda key, *a: None
    a = ttg.make_tt(noop, [], [ei], name="A")
    b = ttg.make_tt(noop, [], [es], name="B")
    c = ttg.make_tt(noop, [ei, es], [], name="C")
    g = ttg.TaskGraph([a, b, c], name="broken")
    """
)


def test_broken_graph_fails_with_rule_id(tmp_path):
    script = tmp_path / "broken.py"
    script.write_text(BROKEN)
    code, out = run_cli([str(script)])
    assert code == 1
    assert "TTG003" in out
    assert "FAIL" in out
    assert "hint:" in out


def test_warning_only_passes_unless_strict(tmp_path):
    script = tmp_path / "dangle.py"
    script.write_text(textwrap.dedent(
        """
        from repro import core as ttg
        e = ttg.Edge("dangling", key_type=int)
        src = ttg.make_tt(lambda key, outs: None, [], [e], name="SRC")
        g = ttg.TaskGraph([src])
        """
    ))
    code, out = run_cli([str(script)])
    assert code == 0
    assert "TTG002" in out
    code, _ = run_cli(["--strict", str(script)])
    assert code == 1


def test_waiver_comment_suppresses_rule(tmp_path):
    # Waived-only findings exit 2, not 0: the graph passes, but only by
    # explicit acknowledgment (see the exit-code contract in cli.py).
    script = tmp_path / "waived.py"
    script.write_text(BROKEN + "\n# ttg-lint: disable=TTG003\n")
    code, out = run_cli([str(script)])
    assert code == 2, out
    assert "waived: TTG003" in out
    assert "suppressed by waivers: 1 finding(s) (TTG003 x1)" in out
    assert "ok (waived): 0 error(s)" in out


def test_crashing_script_fails(tmp_path):
    script = tmp_path / "crash.py"
    script.write_text("raise RuntimeError('boom')\n")
    code, out = run_cli([str(script)])
    assert code == 1
    assert "script failed to run" in out
    assert "boom" in out


def test_missing_file_fails():
    code, out = run_cli(["/no/such/file.py"])
    assert code == 1
    assert "cannot read" in out


# ------------------------------------------------------------------ plumbing


def test_parse_waivers():
    src = "# ttg-lint: disable=TTG001\nx = 1  # ttg-lint: disable=TTG004, TTG005\n"
    assert parse_waivers(src) == ("TTG001", "TTG004", "TTG005")
    assert parse_waivers("x = 1\n") == ()


def test_lint_file_records_bound_nranks(tmp_path):
    script = tmp_path / "bound.py"
    script.write_text(textwrap.dedent(
        """
        from repro import core as ttg
        from repro.runtime import ParsecBackend
        from repro.sim import Cluster, HAWK
        e = ttg.Edge("ab", key_type=int, value_type=int)
        a = ttg.make_tt(lambda key, outs: None, [], [e], name="A")
        b = ttg.make_tt(lambda key, v, outs: None, [e], [], name="B")
        g = ttg.TaskGraph([a, b], name="bound")
        ex = g.executable(ParsecBackend(Cluster(HAWK, 8)))
        """
    ))
    report = lint_file(str(script))
    assert report.crash is None
    assert len(report.graphs) == 1
    assert list(report.nranks.values()) == [8]
    assert report.findings == []


# ------------------------------------------------------ shardsafe subcommand


SHD_UNSAFE = textwrap.dedent(
    """
    import threading
    from repro import core as ttg

    lock = threading.Lock()
    e = ttg.Edge("x", key_type=int, value_type=int)

    def gen(key, outs):
        with lock:
            outs.send(0, key, key)

    def sink(key, v, outs):
        pass

    g = ttg.TaskGraph([
        ttg.make_tt(gen, [], [e], name="GEN", keymap=lambda k: 0),
        ttg.make_tt(sink, [e], [], name="SINK", keymap=lambda k: 0),
    ], name="unsafe")
    """
)

SHD_CLEAN = textwrap.dedent(
    """
    from repro import core as ttg

    e = ttg.Edge("x", key_type=int, value_type=int)

    def gen(key, outs):
        outs.send(0, key, key + 1)

    def sink(key, v, outs):
        pass

    g = ttg.TaskGraph([
        ttg.make_tt(gen, [], [e], name="GEN", keymap=lambda k: 0),
        ttg.make_tt(sink, [e], [], name="SINK", keymap=lambda k: 0),
    ], name="clean")
    """
)


def test_shardsafe_clean_script(tmp_path):
    script = tmp_path / "clean.py"
    script.write_text(SHD_CLEAN)
    code, out = run_cli(["shardsafe", str(script)])
    assert code == 0, out
    assert out.startswith("== repro.analysis shardsafe ==")
    assert "ok: 0 error(s), 0 warning(s)" in out


def test_shardsafe_unsafe_script_fails_hard(tmp_path):
    script = tmp_path / "unsafe.py"
    script.write_text(SHD_UNSAFE)
    code, out = run_cli(["shardsafe", str(script)])
    assert code == 1
    assert "SHD001" in out
    assert "unsafe/GEN.body" in out
    assert "FAIL" in out


def test_shardsafe_file_waiver_exits_waived(tmp_path):
    script = tmp_path / "waived.py"
    script.write_text(SHD_UNSAFE + "\n# ttg-lint: disable=SHD001\n")
    code, out = run_cli(["shardsafe", str(script)])
    assert code == 2, out
    assert "suppressed by waivers: 1 finding(s) (SHD001 x1)" in out
    assert "ok (waived)" in out


def test_shardsafe_expired_template_waiver_is_called_out(tmp_path):
    script = tmp_path / "expired.py"
    script.write_text(
        SHD_UNSAFE
        + "\ng.tts[0].lint_waive('SHD001', expires='2001-01-01')\n"
    )
    code, out = run_cli(["shardsafe", str(script)])
    assert code == 1  # the expired waiver no longer suppresses
    assert "EXPIRED waiver: GEN.lint_waive('SHD001')" in out
    assert "SHD001" in out


def test_shardsafe_audit_runtime_is_clean():
    code, out = run_cli(["shardsafe", "--audit-runtime"])
    assert code == 0, out
    assert "shardsafe runtime audit" in out
    assert "ok: no findings" in out


def _write_trace(path, racy):
    from repro.telemetry.events import EventBus, TID_RT
    from repro.telemetry.export import write_jsonl

    bus = EventBus(nranks=2, capacity=None)
    bus.complete("GEN", 0, 0, 0.0, 1.0, cat="task",
                 args={"template": "GEN", "key": "0"})
    bus.clock = lambda: 1.0
    if racy:  # tokenized write with an unordered cross-rank reader
        bus.instant("dep", 0, TID_RT, cat="dep",
                    src="GEN[0]", dst="LOST[9]", edge="e", obj=1, mode="value")
        bus.complete("R", 1, 0, 0.5, 1.5, cat="task",
                     args={"template": "R", "key": "0", "data": [1]})
    else:
        bus.instant("dep", 0, TID_RT, cat="dep",
                    src="GEN[0]", dst="R[0]", edge="e", obj=1, mode="value")
        bus.complete("R", 1, 0, 2.0, 3.0, cat="task",
                     args={"template": "R", "key": "0", "data": [1]})
    write_jsonl(str(path), bus)


def test_shardsafe_trace_race_fails_hard(tmp_path):
    trace = tmp_path / "racy.jsonl"
    _write_trace(trace, racy=True)
    code, out = run_cli(["shardsafe", "--trace", str(trace)])
    assert code == 1
    assert "race detector" in out
    assert "RACE001" in out


def test_shardsafe_trace_clean_passes(tmp_path):
    trace = tmp_path / "ordered.jsonl"
    _write_trace(trace, racy=False)
    code, out = run_cli(["shardsafe", "--trace", str(trace)])
    assert code == 0, out
    assert "ok: no findings" in out


def test_shardsafe_unreadable_trace_fails(tmp_path):
    code, out = run_cli(["shardsafe", "--trace", str(tmp_path / "no.jsonl")])
    assert code == 1
    assert "cannot read trace" in out


def test_shardsafe_json_artifact(tmp_path):
    import json

    script = tmp_path / "unsafe.py"
    script.write_text(SHD_UNSAFE)
    trace = tmp_path / "racy.jsonl"
    _write_trace(trace, racy=True)
    artifact = tmp_path / "report.json"
    code, _ = run_cli([
        "shardsafe", str(script), "--audit-runtime",
        "--trace", str(trace), "--json", str(artifact),
    ])
    payload = json.loads(artifact.read_text())
    assert payload["schema"] == "repro.analysis/shardsafe-v1"
    assert payload["exit_code"] == code == 1
    assert payload["files"][0]["findings"][0]["rule"] == "SHD001"
    assert payload["audit"] == []
    assert payload["traces"][0]["findings"][0]["rule"] == "RACE001"


def test_shardsafe_requires_some_input():
    with pytest.raises(SystemExit):
        run_cli(["shardsafe"])


def test_shardsafe_example_apps_have_no_errors():
    # The acceptance bar: the paper apps pass the static pass (warnings
    # are the multiprocess TODO list, errors would block the migration).
    for example in ("cholesky_example.py", "bspmm_example.py"):
        code, out = run_cli(["shardsafe", os.path.join(EXAMPLES, example)])
        assert code == 0, out
        assert "0 error(s)" in out


def test_script_stdout_is_captured_not_leaked(tmp_path, capsys):
    script = tmp_path / "noisy.py"
    script.write_text("print('SCRIPT NOISE')\n")
    code, out = run_cli([str(script)])
    assert code == 0
    assert "SCRIPT NOISE" not in out
    assert "SCRIPT NOISE" not in capsys.readouterr().out
    code, out = run_cli(["--verbose", str(script)])
    assert "SCRIPT NOISE" in out
