"""Additional TTG semantics: multi-producer edges, remote injection,
void-key singletons, deep pipelines, and config interplay."""

import pytest

from repro import core as ttg
from repro.runtime import MadnessBackend, ParsecBackend
from repro.runtime.base import BackendConfig
from repro.sim.cluster import Cluster, HAWK


def backend(n=4, **cfg):
    return ParsecBackend(Cluster(HAWK, n), config=BackendConfig(**cfg) if cfg else None)


def test_multiple_producers_one_edge():
    """Two different templates feed the same edge (the SYRK/initiator
    pattern of the Cholesky graph)."""
    e = ttg.Edge("shared")
    got = []

    def src_a(key, outs):
        outs.send(0, ("a", key), 1)

    def src_b(key, outs):
        outs.send(0, ("b", key), 2)

    A = ttg.make_tt(src_a, [], [e], name="A", keymap=lambda k: 0)
    B = ttg.make_tt(src_b, [], [e], name="B", keymap=lambda k: 1)
    C = ttg.make_tt(lambda k, v, outs: got.append((k, v)), [e], [],
                    keymap=lambda k: 2)
    ex = ttg.TaskGraph([A, B, C]).executable(backend())
    ex.invoke(A, 0)
    ex.invoke(B, 0)
    ex.fence()
    assert sorted(got) == [(("a", 0), 1), (("b", 0), 2)]


def test_void_key_singleton_task():
    """A void-key consumer is a singleton: one task, key None."""
    e = ttg.Edge("to_singleton", key_type=ttg.Void)
    got = []

    def src(key, outs):
        outs.send(0, None, "payload")

    S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
    C = ttg.make_tt(lambda k, v, outs: got.append((k, v)), [e], [],
                    keymap=lambda k: 1)
    ex = ttg.TaskGraph([S, C]).executable(backend(2))
    ex.invoke(S, 0)
    ex.fence()
    assert got == [(None, "payload")]


def test_remote_injection_routes_to_owner():
    e = ttg.Edge("inj")
    seen_ranks = []

    def body(key, v, outs):
        seen_ranks.append(outs.rank)

    C = ttg.make_tt(body, [e], [], keymap=lambda k: 3)
    ex = ttg.TaskGraph([C]).executable(backend(4))
    ex.inject(C, 0, "k", 1)
    ex.fence()
    assert seen_ranks == [3]


def test_deep_pipeline_across_all_ranks():
    """A 64-stage chain hopping ranks: order and value preserved."""
    e = ttg.Edge("chain")
    trace = []

    def step(key, v, outs):
        trace.append(key)
        if key < 63:
            outs.send(0, key + 1, v + 1)

    T = ttg.make_tt(step, [e], [e], keymap=lambda k: k % 4)
    ex = ttg.TaskGraph([T]).executable(backend())
    ex.inject(T, 0, 0, 0)
    ex.fence()
    assert trace == list(range(64))


def test_streaming_remote_contributions():
    """Stream contributions arriving from three different ranks."""
    e = ttg.Edge("s")
    got = {}

    def contributor(key, outs):
        outs.send(0, "total", key * 100)

    S = ttg.make_tt(contributor, [], [e], keymap=lambda k: k % 4)
    C = ttg.make_tt(lambda k, v, outs: got.__setitem__(k, v), [e], [],
                    keymap=lambda k: 0)
    C.set_input_reducer(0, lambda a, b: a + b, size=3)
    ex = ttg.TaskGraph([S, C]).executable(backend())
    for k in (1, 2, 3):
        ex.invoke(S, k)
    ex.fence()
    assert got == {"total": 600}


def test_config_naive_broadcast_same_results():
    e = ttg.Edge("b")

    def run(broadcast):
        got = []

        def src(key, outs):
            outs.broadcast(0, list(range(6)), "v")

        S = ttg.make_tt(src, [], [e], keymap=lambda k: 0)
        C = ttg.make_tt(lambda k, v, outs: got.append(k), [e], [],
                        keymap=lambda k: k % 3)
        be = backend(3, broadcast=broadcast)
        ex = ttg.TaskGraph([S, C]).executable(be)
        ex.invoke(S, 0)
        ex.fence()
        return sorted(got)

    # NB: edges bind to templates at construction, so run() rebuilds all.
    assert run("optimized") == run("naive") == list(range(6))


def test_madness_backend_priomap_effective():
    """Priorities order queued tasks on the MADNESS backend too."""
    order = []
    machine = HAWK.with_workers(1)
    be = MadnessBackend(Cluster(machine, 1))
    e = ttg.Edge("p")
    T = ttg.make_tt(lambda k, v, outs: order.append(k), [e], [],
                    keymap=lambda k: 0, priomap=lambda k: k)
    ex = ttg.TaskGraph([T]).executable(be)
    # occupy the single worker, then enqueue in ascending priority
    be.submit(0, lambda: None, flops=2.5e9)
    for k in (1, 5, 3):
        ex.inject(T, 0, k, None)
    ex.fence()
    assert order == [5, 3, 1]


def test_executable_reuse_rejected_for_foreign_injection():
    e = ttg.Edge("f")
    T1 = ttg.make_tt(lambda k, v, outs: None, [e], [], keymap=lambda k: 0)
    other = ttg.make_tt(lambda k, v, outs: None, [ttg.Edge()], [],
                        keymap=lambda k: 0)
    ex = ttg.TaskGraph([T1]).executable(backend(1))
    with pytest.raises(ttg.DeliveryError):
        ex.inject(other, 0, 0, 1)


def test_same_key_different_templates_independent():
    e1, e2 = ttg.Edge("e1"), ttg.Edge("e2")
    got = []
    A = ttg.make_tt(lambda k, v, outs: got.append(("A", k)), [e1], [],
                    name="TA", keymap=lambda k: 0)
    B = ttg.make_tt(lambda k, v, outs: got.append(("B", k)), [e2], [],
                    name="TB", keymap=lambda k: 0)
    ex = ttg.TaskGraph([A, B]).executable(backend(1))
    ex.inject(A, 0, 42, 1)
    ex.inject(B, 0, 42, 2)
    ex.fence()
    assert sorted(got) == [("A", 42), ("B", 42)]
