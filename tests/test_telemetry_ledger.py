"""The run ledger: live JSONL stream, crash recovery, replay, validation.

The contract under test is the tentpole one: a ledger written *during*
execution must (a) replay to the exact final state of the run, (b) stay
readable when the writer is killed mid-run (torn tail dropped, last
flushed snapshot recovered), and (c) cost nothing when not attached.
"""

import json
import os

import pytest

from repro import core as ttg
from repro.runtime import ParsecBackend
from repro.sim import Cluster, HAWK
from repro.telemetry.ledger import (
    LEDGER_SCHEMA,
    LEDGER_VERSION,
    LedgerError,
    LedgerWriter,
    ledger_capture,
    new_run_id,
    read_ledger,
    replay,
    replay_path,
    validate_ledger,
)


def _pipeline_backend(engine="seq", nranks=4, keys=64):
    """A small two-stage graph that fans out over all ranks."""
    backend = ParsecBackend(Cluster.with_engine(HAWK, nranks, engine=engine))
    e = ttg.Edge("e", key_type=int, value_type=int)
    results = {}

    def gen(key, outs):
        outs.send(0, key, key * key)

    def sink(key, val, outs):
        results[key] = val

    g = ttg.make_tt(gen, [], [e], name="GEN", keymap=lambda k: k % nranks)
    s = ttg.make_tt(sink, [e], [], name="SINK",
                    keymap=lambda k: (k + 1) % nranks)
    ex = ttg.TaskGraph([g, s]).executable(backend)
    return backend, ex, g, results, keys


def _run_with_ledger(tmp_path, engine, heartbeat_every=8):
    path = str(tmp_path / f"{engine}.ledger.jsonl")
    backend, ex, gen, results, keys = _pipeline_backend(engine)
    led = LedgerWriter(path, run_id=f"test-{engine}")
    backend.attach_ledger(led, heartbeat_every=heartbeat_every)
    for k in range(keys):
        ex.invoke(gen, k)
    ex.fence()
    backend.close_ledger()
    assert len(results) == keys
    return path, backend


# ------------------------------------------------------------- writer basics


def test_writer_emits_header_and_monotonic_seq(tmp_path):
    path = str(tmp_path / "w.ledger.jsonl")
    led = LedgerWriter(path, run_id="r1", meta={"app": "unit"})
    led.phase("build", sim=0.0)
    led.heartbeat(1.0, events=10)
    led.progress(1.0, tasks_done=1, tasks_total=2, by_template={"T": 1})
    led.close(2.0, makespan=2.0)
    records = read_ledger(path)
    head = records[0]
    assert head["type"] == "ledger_open"
    assert head["schema"] == LEDGER_SCHEMA
    assert head["version"] == LEDGER_VERSION
    assert head["app"] == "unit"
    assert [r["seq"] for r in records] == list(range(len(records)))
    assert all(r["run"] == "r1" for r in records)
    assert validate_ledger(records) == []


def test_writer_close_is_idempotent_and_seals(tmp_path):
    path = str(tmp_path / "w.ledger.jsonl")
    led = LedgerWriter(path, run_id="r1")
    led.close(1.0)
    led.close(1.0)  # second close: no-op, no duplicate record
    assert sum(1 for r in read_ledger(path)
               if r["type"] == "ledger_close") == 1
    with pytest.raises(LedgerError):
        led.emit("phase", phase="build")


def test_writer_sinks_see_every_record(tmp_path):
    seen = []
    led = LedgerWriter(str(tmp_path / "s.jsonl"), run_id="r",
                       sinks=(seen.append,))
    led.phase("build")
    led.close()
    assert [r["type"] for r in seen] == ["ledger_open", "phase",
                                         "ledger_close"]
    assert seen == read_ledger(str(tmp_path / "s.jsonl"))


def test_new_run_ids_unique():
    ids = {new_run_id("t") for _ in range(100)}
    assert len(ids) == 100
    assert all("/" not in i and " " not in i for i in ids)


# ------------------------------------------------------ end-to-end round trip


@pytest.mark.parametrize("engine", ["seq", "sharded"])
def test_run_roundtrip_replays_to_final_state(tmp_path, engine):
    path, backend = _run_with_ledger(tmp_path, engine)
    records = read_ledger(path)
    assert validate_ledger(records) == []
    snap = replay(records)
    assert snap.complete
    assert snap.run_id == f"test-{engine}"
    assert snap.schema_version == LEDGER_VERSION
    # The final snapshot must agree with the backend's own counters.
    assert snap.tasks_done == backend.termination.tasks_retired
    assert snap.tasks_total == backend.termination.tasks_created
    assert snap.tasks_done == snap.tasks_total > 0
    assert snap.by_template == backend.stats.tasks_by_template
    assert snap.by_template["GEN"] == 64
    assert snap.by_template["SINK"] == 64
    assert snap.sim == pytest.approx(backend.stats.makespan)
    assert snap.phases_seen == ["build", "fence", "execute", "drain"]
    # watch's replay path must land on the same state.
    assert replay_path(path) == snap


def test_heartbeats_and_progress_flushed_during_execution(tmp_path):
    path, _ = _run_with_ledger(tmp_path, "seq", heartbeat_every=4)
    kinds = [r["type"] for r in read_ledger(path)]
    assert kinds.count("heartbeat") >= 2
    # Progress snapshots ride along with heartbeats, before the drain.
    first_progress = kinds.index("progress")
    assert first_progress < kinds.index("ledger_close") - 1


def test_sharded_ledger_carries_window_and_quiescence(tmp_path):
    path, backend = _run_with_ledger(tmp_path, "sharded")
    records = read_ledger(path)
    windows = [r for r in records if r["type"] == "window"]
    assert windows, "sharded runs must record per-window health"
    for w in windows:
        assert w["width"] >= 0.0
        assert w["lookahead"] > 0.0
        assert len(w["events_by_shard"]) == backend.nranks
        assert len(w["heap_depths"]) == backend.nranks
        assert w["clock_skew"] >= 0.0
        assert w["executed"] >= 0
    assert sum(w["executed"] for w in windows) == backend.engine.events_processed
    quiet = [r for r in records if r["type"] == "quiescence"]
    assert quiet, "the drain must produce a quiescence timeline"
    assert quiet[-1]["ranks_quiescent"] == backend.nranks
    close = records[-1]
    assert close["type"] == "ledger_close"
    assert close["windows"] == len(windows)


def test_seq_ledger_has_no_window_records(tmp_path):
    path, _ = _run_with_ledger(tmp_path, "seq")
    kinds = {r["type"] for r in read_ledger(path)}
    assert "window" not in kinds and "quiescence" not in kinds


# -------------------------------------------------------------- kill recovery


def test_torn_tail_is_dropped_and_last_snapshot_recovered(tmp_path):
    path, _ = _run_with_ledger(tmp_path, "seq", heartbeat_every=4)
    with open(path) as fh:
        lines = fh.read().splitlines()
    # Simulate a kill: drop the close, tear the last surviving line.
    torn = lines[:-2] + [lines[-2][: len(lines[-2]) // 2]]
    truncated = str(tmp_path / "killed.ledger.jsonl")
    with open(truncated, "w") as fh:
        fh.write("\n".join(torn))
    records = read_ledger(truncated)  # must not raise
    assert len(records) == len(torn) - 1
    snap = replay(records)
    assert not snap.complete
    assert snap.tasks_done > 0  # the last flushed progress survived
    problems = validate_ledger(records)
    assert problems == []  # truncation is not corruption


def test_torn_midfile_line_is_an_error(tmp_path):
    path = str(tmp_path / "corrupt.jsonl")
    led = LedgerWriter(path, run_id="r")
    led.phase("build")
    led.close()
    lines = open(path).read().splitlines()
    lines[1] = lines[1][:10]  # tear a line that is *not* last
    with open(path, "w") as fh:
        fh.write("\n".join(lines))
    with pytest.raises(LedgerError):
        read_ledger(path)


# ----------------------------------------------------------------- validation


def test_validate_names_schema_version_in_diagnostics():
    bad = [{"type": "ledger_open", "schema": "wrong", "version": 1,
            "run": "r", "seq": 0},
           {"type": "mystery", "run": "r", "seq": 0},
           {"type": "phase", "phase": "teardown", "run": "other", "seq": 2}]
    problems = validate_ledger(bad)
    assert any("wrong" in p and f"v{LEDGER_VERSION}" in p for p in problems)
    assert any("mystery" in p for p in problems)
    assert any("teardown" in p for p in problems)
    assert any("run id" in p for p in problems)
    assert any("seq" in p for p in problems)
    assert all("v1" in p for p in problems if "record[" in p)


def test_validate_rejects_newer_version():
    head = {"type": "ledger_open", "schema": LEDGER_SCHEMA,
            "version": LEDGER_VERSION + 1, "run": "r", "seq": 0}
    problems = validate_ledger([head])
    assert any("newer" in p for p in problems)


def test_validate_empty_ledger():
    assert validate_ledger([]) == ["empty ledger (no records)"]


# -------------------------------------------------------------- zero overhead


def test_no_ledger_means_no_hooks_and_no_files(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    backend, ex, gen, results, keys = _pipeline_backend("seq")
    for k in range(keys):
        ex.invoke(gen, k)
    ex.fence()
    assert backend.ledger is None
    assert backend.engine.on_heartbeat is None
    assert backend.engine.heartbeat_every == 0
    assert os.listdir(tmp_path) == []  # not a byte of ledger I/O


@pytest.mark.parametrize("engine", ["seq", "sharded"])
def test_ledger_never_perturbs_virtual_time(tmp_path, engine):
    backend, ex, gen, _, keys = _pipeline_backend(engine)
    for k in range(keys):
        ex.invoke(gen, k)
    bare = ex.fence()
    _, with_ledger = _run_with_ledger(tmp_path, engine, heartbeat_every=1)
    assert with_ledger.stats.makespan == bare


# -------------------------------------------------------------------- capture


def test_ledger_capture_writes_one_ledger_per_backend(tmp_path):
    directory = str(tmp_path / "runs")
    with ledger_capture(directory, prefix="cap") as cap:
        backend, ex, gen, results, keys = _pipeline_backend("sharded")
        for k in range(keys):
            ex.invoke(gen, k)
        ex.fence()
    assert len(cap.writers) == 1
    files = os.listdir(directory)
    assert len(files) == 1 and files[0].endswith(".ledger.jsonl")
    snap = replay_path(os.path.join(directory, files[0]))
    assert snap.complete
    assert snap.tasks_done == snap.tasks_total == 2 * keys
    assert snap.windows > 0
    head = read_ledger(os.path.join(directory, files[0]))[0]
    assert head["nranks"] == 4


# ------------------------------------------------------------------------ CLI


def _cli(*argv):
    import io

    from repro.telemetry.cli import main

    out = io.StringIO()
    code = main(list(argv), stream=out)
    return code, out.getvalue()


def test_cli_validate_ledger_reports_version(tmp_path):
    path, _ = _run_with_ledger(tmp_path, "seq")
    code, text = _cli("validate", path)
    assert code == 0
    assert f"schema v{LEDGER_VERSION}" in text
    assert "complete" in text


def test_cli_validate_json_output(tmp_path):
    path, _ = _run_with_ledger(tmp_path, "sharded")
    code, text = _cli("validate", path, "--json")
    assert code == 0
    result = json.loads(text)
    assert result["valid"] is True
    assert result["kind"] == "ledger"
    assert result["schema_version"] == LEDGER_VERSION
    assert result["supported_version"] == LEDGER_VERSION
    assert result["complete"] is True
    assert result["problems"] == []


def test_cli_validate_json_on_trace(tmp_path):
    from repro.telemetry import Telemetry, write_chrome_trace
    from repro.telemetry.export import TRACE_SCHEMA_VERSION

    tel = Telemetry(nranks=1)
    tel.bus.complete("t", 0, 0, 0.0, 1.0)
    path = str(tmp_path / "t.trace.json")
    write_chrome_trace(path, tel)
    code, text = _cli("validate", path, "--json")
    assert code == 0
    result = json.loads(text)
    assert result["kind"] == "trace"
    assert result["schema_version"] == TRACE_SCHEMA_VERSION


# ---------------------------------------------- resume-boundary takeover


def _torn_then_resumed(tmp_path, torn_line):
    """A run killed mid-write, taken over by an append-mode resumed run."""
    path = str(tmp_path / "resumed.ledger.jsonl")
    led = LedgerWriter(path, run_id="run-a", meta={"app": "unit"})
    led.phase("execute", sim=1.0)
    led.progress(1.0, tasks_done=3, tasks_total=8)
    led._fh.close()  # simulate the kill: no ledger_close
    with open(path, "a") as fh:
        fh.write(torn_line)  # the record the kill tore (no newline)

    resumed = LedgerWriter(path, run_id="run-b", append=True)
    resumed.resume(point="ckpt-3", predecessor="run-a", checkpoints=3)
    resumed.checkpoint(2.0, events=100, verified=True)
    resumed.progress(2.5, tasks_done=8, tasks_total=8)
    resumed.close(3.0)
    return path


def test_append_resume_heals_torn_tail(tmp_path):
    path = _torn_then_resumed(
        tmp_path, '{"type": "heartbeat", "run": "run-a", "se')
    records = read_ledger(path)  # torn record skipped, not fatal
    assert [r["type"] for r in records] == [
        "ledger_open", "phase", "progress",           # predecessor
        "resume", "checkpoint", "progress", "ledger_close",  # takeover
    ]
    assert [r["run"] for r in records] == ["run-a"] * 3 + ["run-b"] * 4
    # seq restarts at the resume boundary, monotone on either side.
    assert [r["seq"] for r in records] == [0, 1, 2, 0, 1, 2, 3]


def test_validate_accepts_resume_takeover(tmp_path):
    path = _torn_then_resumed(
        tmp_path, '{"type": "heartbeat", "run": "run-a", "se')
    records = read_ledger(path)
    assert validate_ledger(records) == []


def test_append_resume_replays_to_resumed_state(tmp_path):
    path = _torn_then_resumed(
        tmp_path, '{"type": "heartbeat", "run": "run-a", "se')
    snap = replay_path(path)
    assert snap.complete is True
    assert snap.resumed_from == "ckpt-3"
    assert snap.checkpoints == 1
    assert snap.tasks_done == 8 and snap.tasks_total == 8


def test_append_resume_terminates_newline_less_torn_tail(tmp_path):
    # The predecessor died mid-write with no trailing newline; the
    # append-mode writer must terminate that line before its own records.
    path = _torn_then_resumed(tmp_path, '{"type": "phase", "ru')
    with open(path) as fh:
        lines = fh.read().splitlines()
    assert lines[3] == '{"type": "phase", "ru'
    assert json.loads(lines[4])["type"] == "resume"


def test_torn_line_followed_by_non_resume_still_raises(tmp_path):
    path = str(tmp_path / "corrupt.ledger.jsonl")
    led = LedgerWriter(path, run_id="run-a")
    led.phase("execute", sim=1.0)
    led._fh.close()
    with open(path, "a") as fh:
        fh.write('{"type": "heartbeat", "run": "run-a", "se\n')
        fh.write(json.dumps({"type": "heartbeat", "run": "run-a",
                             "seq": 9, "events": 5}) + "\n")
    with pytest.raises(LedgerError, match="unparseable mid-file"):
        read_ledger(path)


def test_validate_still_flags_seq_restart_without_resume():
    records = [
        {"type": "ledger_open", "schema": LEDGER_SCHEMA,
         "version": LEDGER_VERSION, "run": "r", "seq": 0},
        {"type": "heartbeat", "run": "r", "seq": 1, "events": 1},
        {"type": "heartbeat", "run": "r", "seq": 0, "events": 2},
    ]
    problems = validate_ledger(records)
    assert any("not monotonically increasing" in p for p in problems)
