"""Tests for Chrome-tracing export and trace integration on real runs."""

import json

import pytest

from repro.apps.bspmm import bspmm_ttg
from repro.linalg import yukawa_blocksparse
from repro.runtime import ParsecBackend
from repro.sim import Cluster, HAWK, Tracer


def test_chrome_trace_events_shape():
    tr = Tracer()
    tr.record_task("A", (1, 2), rank=0, worker=3, start=0.0, end=1e-3)
    tr.record_message(0, 1, 512, sent=0.0, arrived=1e-4, tag="x")
    events = tr.to_chrome_trace()
    task = next(e for e in events if e["ph"] == "X")
    assert task["pid"] == 0 and task["tid"] == 3
    assert task["ts"] == 0.0 and task["dur"] == pytest.approx(1000.0)
    assert task["args"]["key"] == "(1, 2)"
    msg = next(e for e in events if e["ph"] == "i")
    assert msg["args"] == {"src": 0, "nbytes": 512}


def test_chrome_trace_zero_duration_clamped():
    tr = Tracer()
    tr.record_task("Z", 0, 0, 0, 1.0, 1.0)
    (ev,) = tr.to_chrome_trace()
    assert ev["dur"] > 0


def test_write_chrome_trace_valid_json(tmp_path):
    tr = Tracer()
    cluster = Cluster(HAWK, 2)
    a = yukawa_blocksparse(15, target_tile=24, seed=1)
    bspmm_ttg(a, a, ParsecBackend(cluster, tracer=tr))
    path = tmp_path / "trace.json"
    tr.write_chrome_trace(str(path))
    data = json.loads(path.read_text())
    events = data["traceEvents"]
    assert len(events) > 100
    names = {e["name"] for e in events if e["ph"] == "X"}
    assert "MULTIPLY_ADD" in names
    # timestamps are monotone-compatible (all non-negative, within makespan)
    span = tr.makespan() * 1e6
    for e in events:
        assert 0 <= e["ts"] <= span + 1e-6
