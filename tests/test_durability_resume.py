"""Kill-and-resume parity: a resumed run is bit-for-bit an uninterrupted one.

The acceptance criterion of the durability layer, checked for all four
benchmark applications on both event engines: crash a checkpointed run
mid-execution, resume it from disk, and the final bench record (stats,
task counts, byte counters, makespan) must equal the uninterrupted
control run exactly -- only host-side fields may differ.
"""

import pytest

from repro.bench.history import measure_cell
from repro.durability import (
    CheckpointError,
    Checkpointer,
    FaultPlan,
    InjectedFault,
    ResumeConfigError,
    ResumeMismatchError,
    chaos,
    load_chain,
    read_checkpoint,
    resume_run,
    run_id_for,
    state_digest,
    write_checkpoint,
)
from repro.durability.chaos import plans_for_phases
from repro.durability.cli import VOLATILE_RECORD_KEYS

#: Small-but-nontrivial cells; ``every`` is sized so each run passes
#: several cadence points on both engines (see the chain counts asserted
#: in ``test_crash_resume_parity``).
CELLS = {
    "potrf": ({"nodes": 2, "n": 384, "b": 128, "workers": 2}, 10),
    "fw": ({"nodes": 2, "n": 256, "b": 128, "workers": 2}, 10),
    "bspmm": ({"nodes": 2, "natoms": 10, "target_tile": 24, "workers": 2},
              400),
    "mra": ({"nodes": 2, "nfuncs": 2, "k": 4, "workers": 2}, 50),
}


def _spec(app, engine):
    params, every = CELLS[app]
    return dict(params, app=app, seed=0, engine=engine), every


def _core(record):
    d = record.as_dict()
    for key in VOLATILE_RECORD_KEYS:
        d.pop(key, None)
    return d


def _crash(spec, every, directory, nth=2, site="checkpoint"):
    plan = FaultPlan(kind="exception", site=site, nth=nth)
    with chaos.inject(plan):
        with pytest.raises(InjectedFault):
            measure_cell(dict(spec, checkpoint_dir=directory,
                              checkpoint_every=every))


@pytest.mark.parametrize("engine", ["seq", "sharded"])
@pytest.mark.parametrize("app", sorted(CELLS))
def test_crash_resume_parity(tmp_path, app, engine):
    spec, every = _spec(app, engine)
    control = _core(measure_cell(dict(spec)))
    _crash(spec, every, str(tmp_path))
    # the crash left a usable chain behind
    chain = load_chain(str(tmp_path), run_id_for(spec))
    assert chain.checkpoints, "crash before the first checkpoint"
    result = resume_run(str(tmp_path), run_id_for(spec))
    # format v2: the newest checkpoint carries physical heap bytes, so
    # the prefix replay is skipped entirely instead of re-verified
    assert result.restored
    assert result.restored_events >= 1
    assert result.verified == 0
    assert result.written >= 1  # the run continued past the chain
    assert not result.problems
    assert _core(result.record) == control


@pytest.mark.parametrize("engine", ["seq", "sharded"])
def test_verify_replay_fallback(tmp_path, engine):
    """``verify=True`` (CLI ``--verify``) forces the full prefix replay
    even when physical heap bytes are available, re-attesting every
    stored checkpoint -- and still lands on the identical record."""
    spec, every = _spec("mra", engine)
    control = _core(measure_cell(dict(spec)))
    _crash(spec, every, str(tmp_path))
    result = resume_run(str(tmp_path), run_id_for(spec), verify=True)
    assert not result.restored and result.restored_events == 0
    assert result.verified >= 1
    assert result.written >= 1
    assert not result.problems
    assert _core(result.record) == control


@pytest.mark.parametrize("phase", ["build", "fence", "execute", "drain"])
def test_kill_at_every_phase_then_resume(tmp_path, phase):
    """The resilience sweep: no life-cycle point is unrecoverable."""
    spec, every = _spec("mra", "seq")
    control = _core(measure_cell(dict(spec)))
    plan = next(p for p in plans_for_phases() if p.phase == phase)
    with chaos.inject(plan):
        with pytest.raises(InjectedFault):
            measure_cell(dict(spec, checkpoint_dir=str(tmp_path),
                              checkpoint_every=every))
    result = resume_run(str(tmp_path), run_id_for(spec))
    assert _core(result.record) == control
    # a crash during build resumes from the manifest alone
    if phase == "build":
        assert result.resume_point.endswith("/start")


def test_resume_of_completed_run_is_idempotent(tmp_path):
    spec, every = _spec("potrf", "sharded")
    control = _core(measure_cell(dict(spec, checkpoint_dir=str(tmp_path),
                                      checkpoint_every=every)))
    stored = len(load_chain(str(tmp_path), run_id_for(spec)).checkpoints)
    result = resume_run(str(tmp_path), run_id_for(spec), verify=True)
    # every stored checkpoint re-attested, nothing new written
    assert result.verified == stored
    assert result.written == 0
    assert _core(result.record) == control
    # the physical path restores straight to the terminal (drain)
    # checkpoint and re-attests that cursor; record parity still holds
    result = resume_run(str(tmp_path), run_id_for(spec))
    assert result.restored
    assert result.verified == 0 and result.written == 1
    assert _core(result.record) == control


def test_resume_rejects_mismatched_config(tmp_path):
    spec, every = _spec("fw", "seq")
    _crash(spec, every, str(tmp_path))
    wrong = dict(spec, n=512)
    with pytest.raises(ResumeConfigError, match="'n'"):
        resume_run(str(tmp_path), run_id_for(spec), spec=wrong)
    # the matching spec is accepted
    result = resume_run(str(tmp_path), run_id_for(spec), spec=dict(spec))
    assert result.restored or result.verified >= 1


def test_resume_unknown_run_fails_loudly(tmp_path):
    with pytest.raises(CheckpointError, match="no durable run"):
        resume_run(str(tmp_path), "ghost-seed0-seq")


def test_resume_detects_tampered_state(tmp_path):
    """A stored checkpoint whose state was (validly re-signed but)
    altered must fail attestation during the replay, not silently
    produce a different run."""
    spec, every = _spec("mra", "seq")
    _crash(spec, every, str(tmp_path))
    run_id = run_id_for(spec)
    chain = load_chain(str(tmp_path), run_id)
    last = chain.checkpoints[-1]
    ckpt = read_checkpoint(last.path)
    ckpt.state["stats"]["tasks_executed"] = 10**9  # plausible forgery
    ckpt.state_digest = state_digest(ckpt.state)
    write_checkpoint(last.path, ckpt)
    with pytest.raises(ResumeMismatchError, match="diverged"):
        resume_run(str(tmp_path), run_id)


def test_resume_skips_torn_tail_and_reports_it(tmp_path):
    spec, every = _spec("mra", "sharded")
    _crash(spec, every, str(tmp_path), nth=3)
    run_id = run_id_for(spec)
    chain = load_chain(str(tmp_path), run_id)
    assert len(chain.checkpoints) >= 2
    with open(chain.checkpoints[-1].path, "r+b") as fh:
        fh.truncate(23)  # torn at the crash
    control = _core(measure_cell(dict(spec)))
    result = resume_run(str(tmp_path), run_id)
    assert result.problems  # the torn file is reported...
    assert _core(result.record) == control  # ...and parity still holds


def test_ledger_records_resume_point(tmp_path):
    from repro.telemetry.ledger import read_ledger, replay

    spec, every = _spec("mra", "seq")
    _crash(spec, every, str(tmp_path / "ckpt"))
    run_id = run_id_for(spec)
    result = resume_run(str(tmp_path / "ckpt"), run_id,
                        ledger_dir=str(tmp_path / "ledger"))
    ledgers = list((tmp_path / "ledger").glob("*.jsonl"))
    assert len(ledgers) == 1
    snap = replay(read_ledger(str(ledgers[0])))
    assert snap.resumed_from == result.resume_point
    assert snap.checkpoints >= 1
    assert snap.complete and snap.phase == "drain"


def test_checkpointing_disabled_by_default():
    """Zero-overhead path: no hook, no cadence, no directory touched."""
    from repro.runtime import ParsecBackend
    from repro.sim.cluster import Cluster, HAWK

    backend = ParsecBackend(Cluster(HAWK.with_workers(1), 1))
    assert backend.checkpointer is None
    assert backend.engine.on_checkpoint is None
    assert backend.engine.checkpoint_every == 0


def test_checkpointer_detach_restores_engine(tmp_path):
    from repro.runtime import ParsecBackend
    from repro.sim.cluster import Cluster, HAWK

    backend = ParsecBackend(Cluster(HAWK.with_workers(1), 1))
    ck = Checkpointer(str(tmp_path), "r-seed0-seq", spec={"app": "r"},
                      every=16)
    backend.attach_checkpointer(ck)
    assert backend.engine.on_checkpoint is not None
    assert backend.engine.checkpoint_every == 16
    backend.close_checkpointer()
    assert backend.checkpointer is None
    assert backend.engine.on_checkpoint is None
    assert backend.engine.checkpoint_every == 0
