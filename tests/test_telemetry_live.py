"""Streaming progress: dashboard rendering, ledger tailing, live watch."""

import io
import json

import pytest

from repro import core as ttg
from repro.runtime import ParsecBackend
from repro.sim import Cluster, HAWK
from repro.telemetry.ledger import LedgerSnapshot, LedgerWriter, replay_path
from repro.telemetry.live import (
    LiveRenderer,
    _bar,
    _fmt_bytes,
    _fmt_eta,
    _spark,
    render_dashboard,
    tail_ledger,
    watch,
)


def _write_run_ledger(tmp_path, engine="seq", heartbeat_every=8):
    backend = ParsecBackend(Cluster.with_engine(HAWK, 4, engine=engine))
    e = ttg.Edge("e", key_type=int, value_type=int)

    def gen(key, outs):
        outs.send(0, key, key)

    def sink(key, val, outs):
        pass

    g = ttg.make_tt(gen, [], [e], name="GEN", keymap=lambda k: k % 4)
    s = ttg.make_tt(sink, [e], [], name="SINK", keymap=lambda k: (k + 1) % 4)
    ex = ttg.TaskGraph([g, s]).executable(backend)
    path = str(tmp_path / "run.ledger.jsonl")
    backend.attach_ledger(LedgerWriter(path, run_id="live-test"),
                          heartbeat_every=heartbeat_every)
    for k in range(48):
        ex.invoke(g, k)
    ex.fence()
    backend.close_ledger()
    return path


# ------------------------------------------------------------- pure rendering


def test_bar_bounds():
    assert _bar(0.0, 10) == "." * 10
    assert _bar(1.0, 10) == "#" * 10
    assert _bar(2.0, 10) == "#" * 10  # clamped
    assert _bar(-1.0, 10) == "." * 10
    assert len(_bar(0.5, 10)) == 10


def test_spark_downsamples_to_width():
    assert _spark([], 10) == ""
    assert len(_spark(list(range(1000)), 20)) == 20
    flat = _spark([5.0, 5.0, 5.0], 10)
    assert len(set(flat)) == 1  # constant series renders one level


def test_fmt_helpers():
    assert _fmt_bytes(512) == "512B"
    assert _fmt_bytes(2048) == "2.0KiB"
    assert _fmt_bytes(5 * 1024 * 1024) == "5.0MiB"
    assert _fmt_eta(None) == "--"
    assert _fmt_eta(5.0) == "5s"
    assert _fmt_eta(125.0) == "2m05s"


def test_render_dashboard_sections():
    snap = LedgerSnapshot(
        run_id="r-7", schema_version=1, phase="execute",
        phases_seen=["build", "fence", "execute"], sim=1.5, events=1000,
        heartbeats=3, tasks_done=30, tasks_total=100,
        by_template={"GEMM": 25, "TRSM": 5},
        bytes_by_protocol={"eager": 4096, "splitmd": 1 << 20},
        windows=12, window_widths=[1.0, 2.0, 1.5],
        last_window={"batch": 8, "executed": 7, "deferred": 1,
                     "clock_skew": 1e-6, "stall": "fence-bound"},
        events_by_shard=[700, 300], ranks_quiescent=1, nranks=2,
    )
    text = render_dashboard(snap, width=72)
    assert "run r-7" in text and "[ledger v1]" in text and "running" in text
    assert "[execute]" in text and "(drain)" in text  # rail marks state
    assert "30/100 (30.0%)" in text
    assert "GEMM" in text and "TRSM" in text
    assert "eager=4.0KiB" in text and "splitmd=1.0MiB" in text
    assert "12 windows" in text
    assert "stall=fence-bound" in text
    assert "r0" in text and "r1" in text
    assert " q" in text  # quiescence mark on the drained rank
    assert "quiescent ranks: 1/2" in text
    # Bar-bearing lines respect the requested width (free-text lines may
    # run longer; the terminal wraps those harmlessly).
    assert all(len(line) <= 72 for line in text.splitlines()
               if "[#" in line or "[." in line)


def test_render_dashboard_empty_snapshot():
    text = render_dashboard(LedgerSnapshot())
    assert "starting" in text
    assert "0/0 (0.0%)" in text


def test_render_dashboard_caps_rank_table():
    snap = LedgerSnapshot(windows=1, events_by_shard=[10] * 40, nranks=40)
    text = render_dashboard(snap)
    assert "... 24 more ranks" in text


def test_eta_estimates_from_host_rate():
    snap = LedgerSnapshot(tasks_done=50, tasks_total=100,
                          first_host=100.0, last_host=110.0)
    assert snap.eta_seconds() == pytest.approx(10.0)
    snap.complete = True
    assert snap.eta_seconds() is None


# ----------------------------------------------------------------- tailing


def test_tail_ledger_reads_completed_file(tmp_path):
    path = _write_run_ledger(tmp_path)
    records = list(tail_ledger(path, idle_timeout=0.0))
    assert records[0]["type"] == "ledger_open"
    assert records[-1]["type"] == "ledger_close"


def test_tail_ledger_follows_appends_and_reassembles_torn_lines(tmp_path):
    path = str(tmp_path / "grow.jsonl")
    rec1 = json.dumps({"type": "ledger_open", "run": "r", "seq": 0}) + "\n"
    rec2 = json.dumps({"type": "heartbeat", "run": "r", "seq": 1}) + "\n"
    rec3 = json.dumps({"type": "ledger_close", "run": "r", "seq": 2}) + "\n"
    with open(path, "w") as fh:
        fh.write(rec1)
        fh.write(rec2[:9])  # torn: writer mid-record at first read

    appended = []

    def fake_sleep(_):
        # The writer "finishes" the torn record, then closes the run.
        if not appended:
            with open(path, "a") as fh:
                fh.write(rec2[9:])
                fh.write(rec3)
            appended.append(True)

    records = list(tail_ledger(path, poll=0.01, idle_timeout=1.0,
                               sleep=fake_sleep))
    assert [r["type"] for r in records] == [
        "ledger_open", "heartbeat", "ledger_close"]


def test_tail_ledger_idle_timeout_is_kill_recovery(tmp_path):
    # A dead writer: no ledger_close ever arrives. The tailer must yield
    # everything flushed and then stop on its own.
    path = str(tmp_path / "dead.jsonl")
    with open(path, "w") as fh:
        fh.write(json.dumps({"type": "ledger_open", "run": "r", "seq": 0}))
        fh.write("\n")
        fh.write(json.dumps({"type": "progress", "run": "r", "seq": 1,
                             "tasks_done": 7, "tasks_total": 9}))
        fh.write("\n")
    sleeps = []
    records = list(tail_ledger(path, poll=0.5, idle_timeout=1.0,
                               sleep=sleeps.append))
    assert len(records) == 2
    assert 2 <= len(sleeps) <= 3  # polled until the timeout, then gave up


# ------------------------------------------------------------- LiveRenderer


def test_live_renderer_throttles_but_always_paints_close(tmp_path):
    out = io.StringIO()
    r = LiveRenderer(out, min_interval=3600.0)  # throttle everything...
    r.feed({"type": "ledger_open", "run": "x", "seq": 0, "version": 1})
    first = out.getvalue()
    r.feed({"type": "heartbeat", "run": "x", "seq": 1, "sim": 1.0,
            "events": 5})
    assert out.getvalue() == first  # throttled
    r.feed({"type": "ledger_close", "run": "x", "seq": 2, "sim": 2.0})
    assert "complete" in out.getvalue()  # ...except the final record
    assert r.snapshot.complete


def test_live_renderer_as_writer_sink(tmp_path):
    out = io.StringIO()
    led = LedgerWriter(str(tmp_path / "l.jsonl"), run_id="sinky",
                       sinks=(LiveRenderer(out, min_interval=0.0).feed,))
    led.phase("build")
    led.progress(0.5, tasks_done=1, tasks_total=4)
    led.close(1.0)
    text = out.getvalue()
    assert "run sinky" in text
    assert "1/4" in text
    assert "complete" in text


# -------------------------------------------------------------------- watch


def test_watch_once_replays_to_final_state(tmp_path):
    path = _write_run_ledger(tmp_path)
    out = io.StringIO()
    snap = watch(path, stream=out, follow=False)
    assert snap == replay_path(path)
    assert snap.complete and snap.tasks_done == snap.tasks_total == 96
    assert "run live-test" in out.getvalue()


def test_watch_follow_stops_on_close(tmp_path):
    path = _write_run_ledger(tmp_path, engine="sharded")
    out = io.StringIO()
    snap = watch(path, stream=out, poll=0.01, idle_timeout=0.5)
    assert snap.complete
    assert snap.windows > 0
    assert "windows" in out.getvalue()


def test_watch_cli_once(tmp_path):
    from repro.telemetry.cli import main

    path = _write_run_ledger(tmp_path)
    out = io.StringIO()
    assert main(["watch", path, "--once"], stream=out) == 0
    assert "96/96" in out.getvalue()


def test_watch_cli_missing_file(tmp_path):
    from repro.telemetry.cli import main

    out = io.StringIO()
    assert main(["watch", str(tmp_path / "nope.jsonl"), "--once"],
                stream=out) == 1
