"""Fault-injection harness and the pool's retry/backoff resilience."""

import json

import pytest

from repro.bench.parallel import (
    CellFailure,
    CellFailureError,
    run_cells,
)
from repro.durability import FaultPlan, InjectedFault, chaos

MRA_CELL = {"app": "mra", "seed": 0, "engine": "seq", "nodes": 2,
            "nfuncs": 2, "k": 4, "workers": 2}


# -------------------------------------------------------------- fault plans


def test_fault_plan_validates_kind_site_nth():
    with pytest.raises(ValueError, match="kind"):
        FaultPlan(kind="meteor")
    with pytest.raises(ValueError, match="site"):
        FaultPlan(site="nowhere")
    with pytest.raises(ValueError, match="nth"):
        FaultPlan(nth=0)


def test_injected_fault_is_not_a_plain_exception():
    # Like KeyboardInterrupt: no runtime layer may swallow it.
    assert issubclass(InjectedFault, BaseException)
    assert not issubclass(InjectedFault, Exception)


def test_poke_without_plan_is_a_noop():
    assert chaos.active() is None
    chaos.poke("checkpoint", index=0)  # must not raise


def test_inject_fires_on_nth_poke_only():
    with chaos.inject(FaultPlan(site="checkpoint", nth=3)):
        chaos.poke("checkpoint")
        chaos.poke("heartbeat")  # other sites never count
        chaos.poke("checkpoint")
        with pytest.raises(InjectedFault):
            chaos.poke("checkpoint")
        chaos.poke("checkpoint")  # fired once; disarmed afterwards
    assert chaos.active() is None


def test_inject_phase_and_match_filters():
    with chaos.inject(FaultPlan(site="phase", nth=1, phase="drain")):
        chaos.poke("phase", phase="build")
        chaos.poke("phase", phase="execute")
        with pytest.raises(InjectedFault):
            chaos.poke("phase", phase="drain")
    with chaos.inject(FaultPlan(site="cell", nth=1,
                                match={"app": "mra", "seed": 1})):
        chaos.poke("cell", app="mra", seed=0)
        chaos.poke("cell", app="potrf", seed=1)
        with pytest.raises(InjectedFault):
            chaos.poke("cell", app="mra", seed=1)


def test_inject_nests_and_restores():
    outer = FaultPlan(site="checkpoint", nth=99)
    inner = FaultPlan(site="heartbeat", nth=99)
    with chaos.inject(outer):
        assert chaos.active() is outer
        with chaos.inject(inner):
            assert chaos.active() is inner
        assert chaos.active() is outer
    assert chaos.active() is None


def test_latch_fires_once_across_arms(tmp_path):
    """The latch models 'the fault already happened' across processes
    and retries: a second armed plan sharing the latch never fires."""
    latch = str(tmp_path / "fired")
    plan = FaultPlan(site="cell", nth=1, latch=latch)
    with chaos.inject(plan):
        with pytest.raises(InjectedFault):
            chaos.poke("cell")
    with chaos.inject(FaultPlan(site="cell", nth=1, latch=latch)):
        chaos.poke("cell")  # latch exists: the crash already happened


# ----------------------------------------------------------- retry/backoff


def test_run_cells_retries_latched_fault_to_success(tmp_path):
    """A cell that crashes once (latched) succeeds on its inline retry,
    and the retry is recorded in the pool ledger."""
    from repro.telemetry.ledger import read_ledger, replay

    latch = str(tmp_path / "fired")
    plan = FaultPlan(site="cell", nth=1, match={"app": "mra"}, latch=latch)
    with chaos.inject(plan):
        records = run_cells([dict(MRA_CELL)], processes=1, backoff=0.0,
                            ledger_dir=str(tmp_path / "ledger"))
    assert len(records) == 1
    assert records[0].tasks_total > 0
    snap = replay(read_ledger(str(tmp_path / "ledger" / "pool.ledger.jsonl")))
    assert snap.retries == 1
    assert snap.failures == 0


def test_run_cells_matches_control_after_retry(tmp_path):
    control = run_cells([dict(MRA_CELL)], processes=1)
    latch = str(tmp_path / "fired")
    with chaos.inject(FaultPlan(site="cell", nth=1, latch=latch)):
        retried = run_cells([dict(MRA_CELL)], processes=1, backoff=0.0)
    assert retried[0].makespan == control[0].makespan
    assert retried[0].tasks_total == control[0].tasks_total


def test_run_cells_exhausted_retries_raise_cell_failure(tmp_path):
    # an unknown app fails deterministically on every attempt
    bad = {"app": "no-such-app", "seed": 0}
    with pytest.raises(CellFailureError) as exc:
        run_cells([bad, dict(MRA_CELL)], processes=1, retries=2, backoff=0.0,
                  ledger_dir=str(tmp_path))
    failures = exc.value.failures
    assert len(failures) == 1
    assert failures[0].attempts == 3  # retries + 1
    assert "no-such-app" in failures[0].error
    # the failure (and each retry) landed in the pool ledger
    lines = (tmp_path / "pool.ledger.jsonl").read_text().splitlines()
    kinds = [json.loads(ln)["type"] for ln in lines]
    assert kinds.count("retry") == 2
    assert kinds.count("failure") == 1


def test_cell_failure_describe_names_the_cell():
    f = CellFailure({"app": "mra", "seed": 3, "engine": "sharded"},
                    attempts=3, error="InjectedFault: boom")
    text = f.describe()
    assert "mra-seed3-sharded" in text and "3 attempt(s)" in text


def test_watchdog_cli_exits_one_on_permanent_failure(tmp_path, monkeypatch):
    """Satellite: permanent cell failures surface as the watchdog's exit
    code, not a half-measured matrix."""
    import repro.bench.history as history
    from repro.bench.__main__ import main as bench_main

    def _boom(**kwargs):
        raise CellFailureError([CellFailure(
            {"app": "mra", "seed": 0}, attempts=3, error="killed")])

    monkeypatch.setattr(history, "run_watchdog", _boom)
    code = bench_main(["--record-history", "--history-dir", str(tmp_path)])
    assert code == 1


def test_bench_resume_requires_checkpoint_dir():
    from repro.bench.__main__ import main as bench_main

    with pytest.raises(SystemExit):
        bench_main(["--resume", "mra-seed0-seq"])
