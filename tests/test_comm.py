"""Tests for the communication layer: AMs, RMA windows, collectives."""

import numpy as np
import pytest

from repro.comm.am import ActiveMessageRegistry, AmHandlerError
from repro.comm.collectives import Collectives
from repro.comm.endpoint import CommEngine
from repro.comm.rma import RmaError, RmaWindow
from repro.sim.cluster import Cluster, HAWK


def make_comm(nnodes=4, **kw):
    cluster = Cluster(HAWK, nnodes)
    return CommEngine(cluster, **kw), cluster


def test_am_delivers_with_args():
    comm, cluster = make_comm()
    got = []
    comm.send_am(0, 1, 100, lambda a, b: got.append((a, b)), "x", 2)
    cluster.engine.run()
    assert got == [("x", 2)]


def test_am_charges_network_time():
    comm, cluster = make_comm()
    comm.send_am(0, 1, 10**6, lambda: None)
    cluster.engine.run()
    assert cluster.engine.now >= 10**6 / HAWK.network.bandwidth


def test_am_server_serializes():
    base = HAWK.network.am_overhead
    comm, cluster = make_comm(am_cost_fn=lambda dst, n: 1.0e-3)
    times = []
    for _ in range(3):
        comm.send_am(0, 1, 64, lambda: times.append(cluster.engine.now))
    cluster.engine.run()
    # Each message occupies the AM server for 1 ms.
    assert times[1] - times[0] >= 0.9e-3
    assert times[2] - times[1] >= 0.9e-3


def test_extra_server_time():
    comm, cluster = make_comm()
    times = []
    comm.send_am(0, 1, 64, lambda: times.append(cluster.engine.now),
                 extra_server_time=5e-3)
    comm.send_am(0, 1, 64, lambda: times.append(cluster.engine.now))
    cluster.engine.run()
    # Both handlers run only after the 5 ms unpack occupied the server;
    # the second is queued behind the first.
    assert times[0] >= 5e-3
    assert times[1] >= times[0]


def test_am_counters():
    comm, cluster = make_comm()
    comm.send_am(0, 1, 500, lambda: None)
    comm.send_am(1, 2, 700, lambda: None)
    cluster.engine.run()
    assert comm.am_count == 2
    assert comm.am_bytes == 1200


def test_am_fifo_same_channel():
    comm, cluster = make_comm()
    order = []
    for i in range(10):
        comm.send_am(0, 1, 64 + i, lambda i=i: order.append(i))
    cluster.engine.run()
    assert order == list(range(10))


def test_rma_get_bypasses_am_server():
    comm, cluster = make_comm(am_cost_fn=lambda dst, n: 1.0)  # very slow AMs
    done = []
    comm.rma_get(0, 1, 10**4, lambda: done.append(cluster.engine.now))
    cluster.engine.run()
    assert done and done[0] < 0.1  # did not pay the 1 s AM cost


def test_rma_counters():
    comm, cluster = make_comm()
    comm.rma_get(0, 1, 2048, lambda: None)
    cluster.engine.run()
    assert comm.rma_count == 1 and comm.rma_bytes == 2048


# --------------------------------------------------------------- registry


def test_registry_dispatch():
    comm, cluster = make_comm()
    reg = ActiveMessageRegistry(comm)
    got = []
    reg.register(1, "ping", lambda v: got.append(v))
    reg.send(0, 1, "ping", 64, "hello")
    cluster.engine.run()
    assert got == ["hello"]


def test_registry_register_all():
    comm, cluster = make_comm()
    reg = ActiveMessageRegistry(comm)
    got = []
    reg.register_all("t", lambda rank: (lambda: got.append(rank)))
    for dst in range(4):
        reg.send(0, dst, "t", 64)
    cluster.engine.run()
    assert sorted(got) == [0, 1, 2, 3]


def test_registry_unknown_tag():
    comm, _ = make_comm()
    reg = ActiveMessageRegistry(comm)
    with pytest.raises(AmHandlerError):
        reg.send(0, 1, "nope", 64)


# ------------------------------------------------------------------- RMA


def test_window_register_get_release():
    comm, cluster = make_comm()
    win = RmaWindow(comm)
    payload = np.arange(10.0)
    h = win.register(1, payload, payload.nbytes)
    assert win.is_registered(h)
    got = []
    win.get(0, h, lambda data: got.append(data))
    cluster.engine.run()
    assert np.array_equal(got[0], payload)
    got[0][0] = 99.0  # the fetched copy is private
    assert payload[0] == 0.0
    win.release(h)
    assert not win.is_registered(h)


def test_window_get_unknown_handle():
    comm, _ = make_comm()
    win = RmaWindow(comm)
    with pytest.raises(RmaError):
        win.get(0, 42, lambda d: None)


def test_window_double_release():
    comm, _ = make_comm()
    win = RmaWindow(comm)
    h = win.register(0, None, 100)
    win.release(h)
    with pytest.raises(RmaError):
        win.release(h)


def test_window_synthetic_payload():
    comm, cluster = make_comm()
    win = RmaWindow(comm)
    h = win.register(1, None, 4096)
    got = []
    win.get(0, h, lambda data: got.append(data))
    cluster.engine.run()
    assert got == [None]


# -------------------------------------------------------------- collectives


def test_collective_durations():
    comm, _ = make_comm(nnodes=8)
    col = Collectives(comm)
    assert col.bcast_duration(1, 100) == 0.0
    assert col.bcast_duration(8, 100) > 0
    assert col.allreduce_duration(8, 100) == pytest.approx(
        2 * col.reduce_duration(8, 100)
    )
    assert col.allgather_duration(1, 100) == 0.0
    assert col.allgather_duration(8, 100) > 0
    assert col.barrier_duration(8) > col.barrier_duration(1)


def test_event_barrier():
    comm, cluster = make_comm(nnodes=8)
    col = Collectives(comm)
    hit = []
    col.barrier(range(8), lambda: hit.append(cluster.engine.now))
    cluster.engine.run()
    assert hit and hit[0] == pytest.approx(col.barrier_duration(8))


def test_event_bcast_reaches_all():
    comm, cluster = make_comm(nnodes=8)
    col = Collectives(comm)
    got = []
    col.bcast(0, range(8), 1000, lambda r: got.append(r))
    cluster.engine.run()
    assert sorted(got) == list(range(1, 8))


def test_event_bcast_single_rank_noop():
    comm, cluster = make_comm(nnodes=2)
    col = Collectives(comm)
    got = []
    col.bcast(0, [0], 1000, lambda r: got.append(r))
    cluster.engine.run()
    assert got == []
