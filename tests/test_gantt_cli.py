"""Tests for the Gantt SVG export and the bench CLI."""

import pytest

from repro.apps.floydwarshall import floyd_warshall_ttg
from repro.bench.__main__ import main as bench_main
from repro.linalg import BlockCyclicDistribution, TiledMatrix, random_weight_matrix
from repro.runtime import ParsecBackend
from repro.sim import Cluster, HAWK, Tracer
from repro.sim.gantt import gantt_svg, write_gantt


@pytest.fixture(scope="module")
def traced():
    tracer = Tracer()
    cluster = Cluster(HAWK, 2)
    w = random_weight_matrix(48, seed=1)
    W = TiledMatrix.from_dense(w, 16, BlockCyclicDistribution.for_ranks(2))
    floyd_warshall_ttg(W, ParsecBackend(cluster, tracer=tracer))
    return tracer, cluster


def test_gantt_svg_structure(traced):
    tracer, cluster = traced
    svg = gantt_svg(tracer, cluster)
    assert svg.startswith("<svg")
    assert svg.endswith("</svg>")
    assert svg.count("<rect") >= len(tracer.tasks)
    assert "FW_D" in svg  # legend entry
    assert "rank 0" in svg and "rank 1" in svg


def test_gantt_rect_count_capped(traced):
    tracer, cluster = traced
    svg = gantt_svg(tracer, cluster, max_lanes=1)
    assert svg.count("rank") >= 1


def test_gantt_empty_trace():
    svg = gantt_svg(Tracer())
    assert "empty trace" in svg


def test_write_gantt(tmp_path, traced):
    tracer, cluster = traced
    path = tmp_path / "run.svg"
    write_gantt(str(path), tracer, cluster)
    assert path.read_text().startswith("<svg")


def test_gantt_escapes_keys():
    tracer = Tracer()
    tracer.record_task("<evil>", "<key&>", 0, 0, 0.0, 1.0)
    svg = gantt_svg(tracer)
    assert "<evil>" not in svg
    assert "&lt;evil&gt;" in svg


def test_cli_table1(capsys):
    assert bench_main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "hawk" in out and "seawulf" in out


def test_cli_figure_with_max_nodes(capsys):
    assert bench_main(["fig13b", "--max-nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "Fig 13b" in out
    assert "ttg-parsec" in out


def test_cli_rejects_unknown():
    with pytest.raises(SystemExit):
        bench_main(["fig99"])
