"""Metrics registry: instrument caching, labels, rollups, merge."""

import pytest

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_inc_and_negative_rejected():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_instruments_cached_by_name_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("tasks", template="POTRF")
    b = reg.counter("tasks", template="POTRF")
    c = reg.counter("tasks", template="TRSM")
    assert a is b and a is not c
    # Label order is irrelevant; values coerce to strings.
    assert reg.counter("m", rank=1, device="cpu") is reg.counter(
        "m", device="cpu", rank="1"
    )


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_histogram_stats_and_buckets():
    h = Histogram()
    for v in (1e-6, 2e-6, 3e-6):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 3
    assert snap["total"] == pytest.approx(6e-6)
    assert snap["mean"] == pytest.approx(2e-6)
    assert snap["min"] == pytest.approx(1e-6)
    assert snap["max"] == pytest.approx(3e-6)
    assert sum(h.buckets.values()) == 3


def test_rollup_by_label():
    reg = MetricsRegistry()
    reg.counter("tasks", template="POTRF", rank=0).inc(2)
    reg.counter("tasks", template="POTRF", rank=1).inc(3)
    reg.counter("tasks", template="GEMM", rank=0).inc(7)
    reg.counter("tasks").inc(99)  # no 'template' label: ignored
    assert reg.rollup("tasks", by="template") == {"POTRF": 5.0, "GEMM": 7.0}
    assert reg.rollup("tasks", by="rank") == {"0": 9.0, "1": 3.0}


def test_rollup_includes_histogram_totals():
    reg = MetricsRegistry()
    reg.histogram("task_time", template="A").observe(2.0)
    reg.histogram("task_time", template="A").observe(3.0)
    assert reg.rollup("task_time", by="template") == {"A": 5.0}


def test_as_dict_keys_and_kinds():
    reg = MetricsRegistry()
    reg.counter("n", proto="eager").inc()
    reg.gauge("depth").set(4)
    d = reg.as_dict()
    assert d["n{proto=eager}"] == {"value": 1.0, "kind": "counter"}
    assert d["depth"]["kind"] == "gauge"


def test_merge_registries():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("x").inc(1)
    b.counter("x").inc(2)
    b.counter("y", rank=1).inc(5)
    b.histogram("h").observe(1.0)
    a.merge(b)
    assert a.counter("x").value == 3
    assert a.counter("y", rank=1).value == 5
    assert a.histogram("h").count == 1
    # merge copies instruments -- mutating the source must not alias.
    b.counter("y", rank=1).inc(100)
    assert a.counter("y", rank=1).value == 5


def test_gauge_merge_last_write_wins():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.gauge("g").set(1)
    b.gauge("g").set(9)
    a.merge(b)
    assert a.gauge("g").value == 9


def test_collect_filters_and_get():
    reg = MetricsRegistry()
    reg.counter("x", k="1").inc()
    reg.counter("z").inc()
    rows = reg.collect("x")
    assert len(rows) == 1 and rows[0][0] == "x" and rows[0][1] == {"k": "1"}
    assert reg.get("z").value == 1
    assert reg.get("missing") is None
    assert isinstance(reg.get("x", k="1"), Counter)
    assert isinstance(reg.gauge("gg"), Gauge)
