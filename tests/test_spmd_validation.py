"""Executable-vs-analytic validation of the fork-join Cholesky model, plus
property tests on the SPMD layer and network invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import slate_cholesky
from repro.linalg.kernels import effective_flops, gemm_flops, potrf_flops, trsm_flops
from repro.sim.cluster import Cluster, HAWK
from repro.sim.engine import Engine
from repro.sim.network import NetworkModel, NetworkSpec
from repro.spmd import run_spmd

_settings = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def test_spmd_forkjoin_cholesky_validates_slate_model():
    """An actual SPMD program with SLATE's round structure (tile panel,
    broadcasts, bulk update, barrier per iteration) lands within 3x of the
    analytic fork-join model."""
    nodes, n, b = 4, 4096, 256
    machine = HAWK.with_workers(8)
    nt = n // b
    tile_bytes = b * b * 8

    def program(ctx):
        # 2x2 rank grid, block-cyclic tiles.
        pr, pc = 2, 2
        my_r, my_c = divmod(ctx.rank, pc)
        for k in range(nt):
            owner_kk = (k % pr) * pc + (k % pc)
            if ctx.rank == owner_kk:
                yield ctx.compute(effective_flops(potrf_flops(b), b), workers=4)
            yield ctx.bcast(None, root=owner_kk, nbytes=tile_bytes)
            # panel TRSMs on the owning column
            my_tiles = sum(
                1 for m in range(k + 1, nt)
                if (m % pr) * pc + (k % pc) == ctx.rank
            )
            if my_tiles:
                yield ctx.compute(my_tiles * effective_flops(trsm_flops(b), b))
            yield ctx.bcast(None, root=owner_kk, nbytes=tile_bytes * max(1, nt - k - 1))
            # trailing update
            my_updates = sum(
                1
                for m in range(k + 1, nt)
                for j in range(k + 1, m + 1)
                if (m % pr) * pc + (j % pc) == ctx.rank
            )
            if my_updates:
                yield ctx.compute(
                    my_updates * effective_flops(gemm_flops(b, b, b), b)
                )
            yield ctx.barrier()

    t_spmd = run_spmd(Cluster(machine, nodes), program)
    t_model = slate_cholesky(Cluster(machine, nodes), n).makespan
    assert 1 / 3 < t_spmd / t_model < 3.0, (t_spmd, t_model)


# ------------------------------------------------------- SPMD properties


@given(st.permutations(list(range(5))), st.permutations(list(range(5))))
@_settings
def test_spmd_any_matched_send_recv_order_completes(send_order, recv_order):
    """Rank 0 sends 5 tagged messages in any order; rank 1 receives them
    in any (tag-matched) order: always completes, values always correct."""
    got = {}

    def program(ctx):
        if ctx.rank == 0:
            for tag in send_order:
                yield ctx.send(1, f"v{tag}", tag=tag)
        else:
            for tag in recv_order:
                v = yield ctx.recv(0, tag=tag)
                got[tag] = v

    run_spmd(Cluster(HAWK, 2), program)
    assert got == {t: f"v{t}" for t in range(5)}


@given(st.integers(min_value=2, max_value=6), st.integers(min_value=1, max_value=3))
@_settings
def test_spmd_allreduce_consistency(nranks, rounds):
    results = []

    def program(ctx):
        acc = ctx.rank
        for _ in range(rounds):
            acc = yield ctx.allreduce(acc)
        results.append(acc)

    run_spmd(Cluster(HAWK, nranks), program)
    assert len(set(results)) == 1  # everyone agrees


# ----------------------------------------------------- network properties


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=10**6),
        ),
        min_size=1,
        max_size=30,
    )
)
@_settings
def test_network_arrivals_respect_latency_and_fifo(msgs):
    eng = Engine()
    spec = NetworkSpec(latency=1e-6, bandwidth=1e9)
    net = NetworkModel(spec, 4, eng)
    last_arrival = {}
    for src, dst, nbytes in msgs:
        t = net.send(src, dst, nbytes)
        if src != dst:
            assert t >= spec.latency + nbytes / spec.bandwidth - 1e-15
            key = (src, dst)
            if key in last_arrival:
                # FIFO per channel: arrivals never reorder
                assert t >= last_arrival[key] - 1e-15
            last_arrival[key] = t


@given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=10**6))
@_settings
def test_collective_durations_monotone_in_ranks(nranks, nbytes):
    eng = Engine()
    net = NetworkModel(NetworkSpec(), 64, eng)
    t1 = net.bcast_time(nranks, nbytes)
    t2 = net.bcast_time(min(64, nranks * 2), nbytes)
    assert t2 >= t1
    assert net.barrier_time(nranks) <= net.barrier_time(min(64, nranks * 2))
