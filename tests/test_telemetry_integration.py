"""Telemetry through the full stack: hooks, sampling, adapters, overhead."""

import time

import pytest

from repro import core as ttg
from repro.runtime import MadnessBackend, ParsecBackend
from repro.runtime.base import BackendConfig
from repro.runtime.scheduler import InstrumentedQueue, get_scheduler
from repro.sim.cluster import Cluster, HAWK
from repro.telemetry.adapter import as_tracer, capture
from repro.telemetry.events import Telemetry


def run_fanout(backend, nkeys=12, work=200.0):
    """One source fanning out nkeys tasks, high keys prioritized."""
    e = ttg.Edge("a2b", key_type=int, value_type=int)
    done = []

    def src(key, outs):
        for k in range(nkeys):
            outs.send(0, k, k)

    def work_fn(key, v, outs):
        done.append(key)

    A = ttg.make_tt(src, [], [e], name="SRC", keymap=lambda k: 0)
    B = ttg.make_tt(
        work_fn, [e], [], name="WORK", keymap=lambda k: 0,
        priomap=lambda k: k, cost=lambda k, v: work,
    )
    ex = ttg.TaskGraph([A, B]).executable(backend)
    ex.invoke(A, 0)
    ex.fence()
    return done


def test_queue_wait_sampled_under_priority_scheduler():
    """On a 1-worker node every ready task but the first waits in queue;
    the instrumented priority queue must observe those waits and pops
    must come out priority-ordered."""
    machine = HAWK.with_workers(1)
    tel = Telemetry(nranks=1, capacity=None)
    backend = ParsecBackend(
        Cluster(machine, 1),
        config=BackendConfig(scheduler="priority"),
        telemetry=tel,
    )
    done = run_fanout(backend, nkeys=12)
    # Key 0 starts on the idle worker as it arrives; everything else piles
    # up behind it and must drain highest-priority-first.
    assert done[1:] == sorted(done[1:], reverse=True)
    wait = tel.metrics.get("queue_wait", rank=0, device="cpu")
    assert wait is not None
    assert wait.count == 13       # 12 WORK tasks + the SRC task itself
    # The last-popped task waited through its 11 predecessors.
    assert wait.vmax > wait.vmin >= 0.0
    assert wait.total > 0.0
    depths = tel.bus.counters("queue_depth_cpu")
    assert depths
    assert max(v.values["depth"] for v in depths) >= 11
    assert tel.metrics.gauge("queue_depth_peak", rank=0, device="cpu").value >= 11


def test_instrumented_queue_wraps_any_policy():
    now = [0.0]
    seen = []
    q = InstrumentedQueue(
        get_scheduler("fifo"), lambda: now[0],
        on_pop=lambda wait, depth: seen.append((wait, depth)),
    )
    q.push("a")
    now[0] = 2.0
    q.push("b")
    now[0] = 5.0
    assert q.pop() == "a" and q.pop() == "b"
    assert seen == [(5.0, 1), (3.0, 0)]
    assert q.policy == "fifo"
    assert len(q) == 0 and not q


def test_instrumented_queue_rejects_nonempty_inner():
    inner = get_scheduler("lifo")
    inner.push("x")
    with pytest.raises(ValueError):
        InstrumentedQueue(inner, lambda: 0.0)


def test_runstats_breakdowns_maintained_without_telemetry():
    backend = ParsecBackend(Cluster(HAWK, 1))
    run_fanout(backend, nkeys=5)
    s = backend.stats
    assert s.tasks_by_template["SRC"] == 1
    assert s.tasks_by_template["WORK"] == 5
    assert sum(s.tasks_by_template.values()) == s.tasks_executed
    d = s.as_dict()
    assert set(d) == set(type(s)().as_dict())
    assert d["tasks_by_template"] is not s.tasks_by_template  # copied


def test_bytes_by_protocol_split():
    import numpy as np

    from repro.linalg.tile import MatrixTile

    tel = Telemetry(nranks=2, capacity=None)
    backend = ParsecBackend(Cluster(HAWK, 2), telemetry=tel)
    got = []
    big = MatrixTile(64, 64, np.ones((64, 64)))  # 32 KiB > eager -> splitmd
    backend.send_value(0, 1, big, got.append)
    backend.send_control(0, 1, lambda: got.append("ctrl"))
    backend.run()
    assert len(got) == 2
    bp = backend.stats.bytes_by_protocol
    assert "splitmd" in bp and "control" in bp
    assert bp["splitmd"] > 64 * 64 * 8
    assert tel.metrics.get("messages", protocol="splitmd", src=0, dst=1).value == 1
    proto = tel.bus.spans(cat="proto")
    assert {p.name for p in proto} == {"splitmd:meta:data", "splitmd:rma:data"}
    meta, rma = sorted(proto, key=lambda p: p.start)
    assert meta.flow == rma.flow is not None
    assert meta.end == pytest.approx(rma.start)


def test_termination_quiescence_instants():
    tel = Telemetry(nranks=1, capacity=None)
    backend = ParsecBackend(Cluster(HAWK, 1), telemetry=tel)
    run_fanout(backend, nkeys=3)
    qs = tel.bus.instants(cat="rt")
    assert qs and qs[-1].name == "quiescence"
    assert qs[-1].args["tasks"] == backend.stats.tasks_executed + \
        backend.stats.local_deliveries
    assert tel.metrics.counter("quiescence_epochs").value >= 1


def test_sanitizer_findings_land_on_timeline():
    e = ttg.Edge("dup")
    never = ttg.Edge("never")

    def src(key, outs):
        outs.send(0, 7, 1)
        outs.send(0, 7, 2)

    def sink(key, a, b, outs):
        pass

    S = ttg.make_tt(src, [], [e], name="S", keymap=lambda k: 0)
    K = ttg.make_tt(sink, [e, never], [], name="K", keymap=lambda k: 0)
    tel = Telemetry(nranks=1, capacity=None)
    backend = ParsecBackend(Cluster(HAWK, 1), telemetry=tel)
    ex = ttg.TaskGraph([S, K]).executable(backend, sanitize=True)
    ex.invoke(S, 0)
    with pytest.warns(RuntimeWarning):
        with pytest.raises(Exception):
            ex.fence()
    san = tel.bus.instants(cat="san")
    assert san, "sanitizer findings must appear as instant events"
    assert all(ev.name.startswith("SAN") for ev in san)
    assert all("location" in ev.args and "message" in ev.args for ev in san)
    rule = san[0].name
    assert tel.metrics.counter("san_findings", rule=rule).value >= 1


def test_dep_instants_emitted_for_sends():
    tel = Telemetry(nranks=1, capacity=None)
    backend = ParsecBackend(Cluster(HAWK, 1), telemetry=tel)
    run_fanout(backend, nkeys=4)
    deps = tel.bus.instants(cat="dep")
    assert len(deps) == 4
    assert all(d.args["src"] == "SRC[0]" for d in deps)
    assert {d.args["dst"] for d in deps} == {f"WORK[{k}]" for k in range(4)}


def test_virtual_time_identical_with_and_without_telemetry():
    """Telemetry must not perturb the simulation: same makespan, same
    stats, task for task."""
    results = []
    for tel in (None, Telemetry(nranks=2, capacity=None)):
        backend = ParsecBackend(Cluster(HAWK, 2), telemetry=tel)
        e = ttg.Edge("x", key_type=int, value_type=int)
        out = []

        def src(key, outs):
            for k in range(16):
                outs.send(0, k, k)

        def snk(key, v, outs):
            out.append(key)

        A = ttg.make_tt(src, [], [e], name="A", keymap=lambda k: 0)
        B = ttg.make_tt(snk, [e], [], name="B", keymap=lambda k: k % 2,
                        cost=lambda k, v: 500.0)
        ex = ttg.TaskGraph([A, B]).executable(backend)
        ex.invoke(A, 0)
        makespan = ex.fence()
        results.append((makespan, backend.stats.as_dict(), sorted(out)))
    (m0, s0, o0), (m1, s1, o1) = results
    assert m0 == m1
    assert s0 == s1
    assert o0 == o1


def test_disabled_overhead_is_small():
    """The no-op path (telemetry=None) must stay within a lenient factor
    of the seed's cost profile -- a coarse tripwire for accidentally
    putting work on the hot path."""

    def once():
        backend = ParsecBackend(Cluster(HAWK, 2))
        t0 = time.perf_counter()
        run_fanout(backend, nkeys=300, work=10.0)
        return time.perf_counter() - t0

    once()                      # warm imports/JIT-ish caches
    base = min(once() for _ in range(3))
    assert base < 5.0           # absolute sanity: this is a tiny graph


def test_as_tracer_adapter_feeds_legacy_views():
    tel = Telemetry(nranks=2, capacity=None)
    backend = ParsecBackend(Cluster(HAWK, 2), telemetry=tel)
    e = ttg.Edge("x", key_type=int, value_type=int)

    def src(key, outs):
        for k in range(4):
            outs.send(0, k, k)

    def snk(key, v, outs):
        pass

    A = ttg.make_tt(src, [], [e], name="A", keymap=lambda k: 0)
    B = ttg.make_tt(snk, [e], [], name="B", keymap=lambda k: k % 2)
    ex = ttg.TaskGraph([A, B]).executable(backend)
    ex.invoke(A, 0)
    ex.fence()

    tracer = as_tracer(tel)
    names = {t.name for t in tracer.tasks}
    assert {"A", "B"} <= names
    assert len(tracer.tasks) == backend.stats.tasks_executed
    assert tracer.messages  # remote sends became message records

    from repro.sim.gantt import gantt_svg
    from repro.sim.profile import Profile

    svg = gantt_svg(tracer, backend.cluster)
    assert svg.startswith("<svg")
    assert "B" in Profile(tracer, backend.cluster).report()


def test_capture_attaches_to_every_backend():
    with capture(capacity=None) as runs:
        for cls in (ParsecBackend, MadnessBackend):
            backend = cls(Cluster(HAWK, 1))
            run_fanout(backend, nkeys=3)
    assert len(runs) == 2
    assert {r.backend.name for r in runs} == {"parsec", "madness"}
    for r in runs:
        assert len(r.telemetry.bus.spans(cat="task")) == 4
        assert r.graphs == ["ttg"]
        assert "ttg@" in r.label
    # Observer removed: backends made after the block stay dark.
    backend = ParsecBackend(Cluster(HAWK, 1))
    run_fanout(backend, nkeys=1)
    assert backend.telemetry is None
