"""Tests for the happens-before race detector (RACE rules).

Unit tests drive :func:`detect_races` over hand-built event buses (full
control of spans, dep edges and timestamps); integration tests record a
real execution through the runtime's telemetry hooks and assert that
clean message-passing graphs stay race-free while cref aliasing abuse is
caught.
"""

import warnings

import pytest

from repro import core as ttg
from repro.analysis.race import HappensBefore, detect_races
from repro.runtime import ParsecBackend
from repro.sim import Cluster, HAWK
from repro.telemetry.analyze import dep_edges, program_order_edges, task_nodes
from repro.telemetry.events import EventBus, TID_RT, Telemetry

# ------------------------------------------------------- synthetic traces


def _bus(nranks=2):
    return EventBus(nranks=nranks, capacity=None)


def _task(bus, template, key, rank, start, end, data=None):
    args = {"template": template, "key": key}
    if data:
        args["data"] = list(data)
    bus.complete(template, rank, 0, start, end, cat="task", args=args)


def _instant(bus, name, cat, rank, ts, **args):
    bus.clock = lambda t=ts: t
    bus.instant(name, rank, TID_RT, cat=cat, **args)


def _dep(bus, rank, ts, src, dst, tok=None, mode="value"):
    args = {"src": src, "dst": dst, "edge": "e"}
    if tok is not None:
        args.update(obj=tok, mode=mode)
    _instant(bus, "dep", "dep", rank, ts, **args)


def _ids(findings):
    return [f.rule.id for f in findings]


def test_race001_unordered_cross_rank_write_read():
    bus = _bus()
    _task(bus, "GEN", "0", 0, 0.0, 1.0)
    # Tokenized send whose consumer never executed: registers the write
    # without creating a happens-before edge to the reader below.
    _dep(bus, 0, 1.0, "GEN[0]", "LOST[9]", tok=1)
    _task(bus, "R", "0", 1, 0.5, 1.5, data=[1])
    findings = detect_races(bus)
    assert _ids(findings) == ["RACE001"]
    assert "GEN[0]" in findings[0].message
    assert "R[0]" in findings[0].message
    assert findings[0].location == "data#1"


def test_no_race_when_dep_edge_orders_the_pair():
    bus = _bus()
    _task(bus, "GEN", "0", 0, 0.0, 1.0)
    _task(bus, "R", "0", 1, 2.0, 3.0, data=[1])
    _dep(bus, 0, 1.0, "GEN[0]", "R[0]", tok=1)
    assert detect_races(bus) == []


def test_race002_two_unordered_writers():
    bus = _bus()
    _task(bus, "W1", "0", 0, 0.0, 1.0)
    _task(bus, "W2", "0", 1, 0.0, 1.0)
    _dep(bus, 0, 1.0, "W1[0]", "LOST[8]", tok=5)
    _dep(bus, 1, 1.0, "W2[0]", "LOST[9]", tok=5)
    findings = detect_races(bus)
    assert _ids(findings) == ["RACE002"]
    assert "W1[0]" in findings[0].message and "W2[0]" in findings[0].message


def test_zero_copy_move_alias_counts_as_write():
    bus = _bus()
    _task(bus, "W1", "0", 0, 0.0, 1.0)
    _task(bus, "C", "0", 0, 1.5, 2.5)
    _task(bus, "R2", "0", 1, 2.0, 3.0, data=[5])
    # Zero-copy ownership transfer W1 -> C on rank 0: C now writes the
    # buffer, concurrently with the rank-1 reader R2 (and the buffer is
    # live on both ranks: RACE003).
    _instant(bus, "alias", "alias", 0, 1.0,
             src="W1[0]", dst="C[0]", obj=5, mode="move")
    findings = detect_races(bus)
    assert _ids(findings) == ["RACE001", "RACE003"]
    assert "written by C[0]" in findings[0].message


def test_dep_destination_is_not_an_access():
    # A delivery may hand the consumer a serialized or cloned copy, so
    # the dep instant's dst must NOT count as touching the sender's
    # buffer -- otherwise every broadcast tree reports its sibling
    # branches as cross-rank races (regression test for exactly that).
    bus = _bus()
    _task(bus, "BCAST", "0", 0, 0.0, 1.0)
    _task(bus, "LSTORE", "(1,)", 1, 2.0, 3.0)
    _task(bus, "LBCAST", "(0,)", 0, 1.5, 2.5)
    # One buffer fanned out to a remote sibling and re-sent locally.
    _dep(bus, 0, 1.0, "BCAST[0]", "LSTORE[(1,)]", tok=9, mode="cref")
    _dep(bus, 0, 2.0, "LBCAST[(0,)]", "LOST[9]", tok=9, mode="cref")
    assert detect_races(bus) == []


def test_race003_token_observed_on_two_ranks_even_if_ordered():
    bus = _bus()
    _task(bus, "A", "0", 0, 0.0, 1.0, data=[7])
    _task(bus, "B", "0", 1, 2.0, 3.0, data=[7])
    _dep(bus, 0, 1.0, "A[0]", "B[0]")  # ordered -- still aliased
    findings = detect_races(bus)
    assert _ids(findings) == ["RACE003"]
    assert "ranks [0, 1]" in findings[0].message


def test_race003_counts_zero_copy_alias_instants():
    bus = _bus()
    _task(bus, "A", "0", 0, 0.0, 1.0, data=[7])
    _instant(bus, "alias", "alias", 1, 2.0,
             src="A[0]", dst="B[0]", obj=7, mode="cref")
    assert _ids(detect_races(bus)) == ["RACE003"]


def test_race004_mutation_after_sharer_span_is_strict():
    bus = _bus()
    _task(bus, "GEN", "0", 0, 0.0, 1.0)
    # _record_task stamps the span before the body runs, so the sharer's
    # own post-send mutation lands exactly at span.end: not a race.
    _instant(bus, "SAN003", "san", 0, 1.0, location="C[0].in",
             sharer="GEN[0]")
    assert detect_races(bus) == []
    _instant(bus, "SAN003", "san", 0, 2.0, location="C[1].in",
             sharer="GEN[0]")
    findings = detect_races(bus)
    assert _ids(findings) == ["RACE004"]
    assert "GEN[0]" in findings[0].message
    assert findings[0].location == "C[1].in"


def test_race004_ignores_unknown_sharer():
    bus = _bus()
    _task(bus, "GEN", "0", 0, 0.0, 1.0)
    _instant(bus, "SAN003", "san", 0, 5.0, location="x", sharer="GHOST[0]")
    _instant(bus, "SAN003", "san", 0, 5.0, location="y")
    assert detect_races(bus) == []


def test_same_rank_accesses_never_race():
    bus = _bus(nranks=1)
    _task(bus, "W", "0", 0, 0.0, 1.0)
    _task(bus, "R", "0", 0, 0.5, 1.5, data=[3])
    _dep(bus, 0, 1.0, "W[0]", "LOST[9]", tok=3)
    assert detect_races(bus) == []


def test_ignore_filters_rules():
    bus = _bus()
    _task(bus, "GEN", "0", 0, 0.0, 1.0)
    _dep(bus, 0, 1.0, "GEN[0]", "LOST[9]", tok=1)
    _task(bus, "R", "0", 1, 0.5, 1.5, data=[1])
    assert detect_races(bus, ignore=("RACE001",)) == []


def test_findings_are_deduplicated_and_stably_ordered():
    bus = _bus()
    _task(bus, "GEN", "0", 0, 0.0, 1.0, data=[1])
    _dep(bus, 0, 1.0, "GEN[0]", "LOST[9]", tok=1)
    _dep(bus, 0, 1.0, "GEN[0]", "LOST[9]", tok=1)  # duplicate instant
    _task(bus, "R", "0", 1, 0.5, 1.5, data=[1])
    findings = detect_races(bus)
    assert _ids(findings) == ["RACE001", "RACE003"]
    assert detect_races(bus) == findings  # deterministic replay


def test_empty_trace_is_clean():
    assert detect_races(_bus()) == []
    assert detect_races(Telemetry(nranks=2, capacity=None)) == []


# ------------------------------------------------------ HappensBefore core


def test_vector_clocks_transitive_across_ranks():
    bus = _bus(nranks=3)
    _task(bus, "A", "0", 0, 0.0, 1.0)
    _task(bus, "B", "0", 1, 2.0, 3.0)
    _task(bus, "C", "0", 2, 4.0, 5.0)
    _dep(bus, 0, 1.0, "A[0]", "B[0]")
    _dep(bus, 1, 3.0, "B[0]", "C[0]")
    nodes = task_nodes(bus)
    hb = HappensBefore(nodes, dep_edges(bus) + program_order_edges(nodes))
    assert hb.hb("A[0]", "B[0]")
    assert hb.hb("A[0]", "C[0]")  # transitively, through rank 1
    assert not hb.hb("C[0]", "A[0]")
    assert hb.hb("A[0]", "A[0]")


def test_program_order_chains_same_rank_spans():
    bus = _bus(nranks=2)
    _task(bus, "A", "0", 0, 0.0, 1.0)
    _task(bus, "A", "1", 0, 2.0, 3.0)
    _task(bus, "B", "0", 1, 0.0, 1.0)
    nodes = task_nodes(bus)
    hb = HappensBefore(nodes, dep_edges(bus) + program_order_edges(nodes))
    assert hb.hb("A[0]", "A[1]")          # same shard executes in order
    assert hb.concurrent("A[0]", "B[0]")  # nothing links the ranks


# ------------------------------------------------------------- data tokens


def test_data_token_tracks_buffers_not_scalars():
    import numpy as np

    tel = Telemetry(nranks=1)
    for scalar in (None, 1, 1.5, "s", b"b", True, 2 + 3j):
        assert tel.data_token(scalar) is None
    assert tel.data_token({"no": "buffer protocol"}) is None

    a, b = np.zeros(4), np.zeros(4)
    ta = tel.data_token(a)
    assert ta == tel.data_token(a)      # stable per object
    assert ta != tel.data_token(b)      # distinct per object
    from repro.linalg import MatrixTile

    assert tel.data_token(MatrixTile.zeros(2, 2)) not in (None, ta)


# --------------------------------------------------------- live executions


def _telemetry_backend(nranks):
    tel = Telemetry(nranks=nranks, capacity=None)
    return ParsecBackend(Cluster(HAWK, nranks), telemetry=tel), tel


def test_clean_message_passing_run_has_no_races():
    """Tiles sent by value across ranks deserialize to fresh buffers, so
    a well-formed graph records zero RACE findings."""
    from repro.linalg import MatrixTile

    e = ttg.Edge("t", key_type=int, value_type=MatrixTile)

    def gen(key, outs):
        for k in range(4):
            outs.send(0, k, MatrixTile.zeros(2, 2))

    def sink(key, tile, outs):
        tile.data[0, 0] += 1.0  # local mutation of a private copy

    gen_tt = ttg.make_tt(gen, [], [e], name="GEN", keymap=lambda k: 0)
    sink_tt = ttg.make_tt(sink, [e], [], name="SINK", keymap=lambda k: k % 2)
    backend, tel = _telemetry_backend(2)
    ex = ttg.TaskGraph([gen_tt, sink_tt]).executable(backend, shardsafe=True)
    ex.invoke(gen_tt, 0)
    ex.fence()
    assert ex.race_findings == []
    # The run did record tokenized dependency traffic.
    assert any("obj" in ev.args for ev in tel.bus.instants(cat="dep"))


def test_cref_mutation_chain_triggers_race004():
    """GEN shares a tile by cref; the consumer mutates it and forwards
    the same object, so the second consumer observes a stale share --
    the acceptance-criteria unordered-tile-write fixture."""
    from repro.linalg import MatrixTile

    e1 = ttg.Edge("t1", key_type=int, value_type=MatrixTile)
    e2 = ttg.Edge("t2", key_type=int, value_type=MatrixTile)

    def gen(key, outs):
        outs.send(0, 0, MatrixTile.zeros(2, 2), mode="cref")

    def c1(key, tile, outs):
        tile.data[0, 0] = 42.0          # write outside the owner's span
        outs.send(0, 0, tile, mode="cref")

    def c2(key, tile, outs):
        pass

    gen_tt = ttg.make_tt(gen, [], [e1], name="GEN", keymap=lambda k: 0)
    c1_tt = ttg.make_tt(c1, [e1], [e2], name="C1", keymap=lambda k: 0,
                        cost=lambda key, tile: (1.0e9, 0.0))
    c2_tt = ttg.make_tt(c2, [e2], [], name="C2", keymap=lambda k: 0)
    backend, tel = _telemetry_backend(1)
    graph = ttg.TaskGraph([gen_tt, c1_tt, c2_tt])
    ex = graph.executable(backend, sanitize=True, shardsafe=True)
    ex.invoke(gen_tt, 0)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        ex.fence()
    assert any(f.rule.id == "RACE004" for f in ex.race_findings)
    finding = next(f for f in ex.race_findings if f.rule.id == "RACE004")
    assert "GEN[0]" in finding.message
    assert any("TTG race: RACE004" in str(w.message) for w in caught)
    # The underlying sanitizer fault is on record too.
    assert any(f.rule.id == "SAN003" for f in ex.sanitizer.findings)


def test_strict_fence_raises_on_races():
    from repro.core.exceptions import SanitizerError
    from repro.linalg import MatrixTile

    e1 = ttg.Edge("t1", key_type=int, value_type=MatrixTile)
    e2 = ttg.Edge("t2", key_type=int, value_type=MatrixTile)

    def gen(key, outs):
        outs.send(0, 0, MatrixTile.zeros(2, 2), mode="cref")

    def c1(key, tile, outs):
        tile.data[0, 0] = 42.0
        outs.send(0, 0, tile, mode="cref")

    gen_tt = ttg.make_tt(gen, [], [e1], name="GEN", keymap=lambda k: 0)
    c1_tt = ttg.make_tt(c1, [e1], [e2], name="C1", keymap=lambda k: 0,
                        cost=lambda key, tile: (1.0e9, 0.0))
    c2_tt = ttg.make_tt(lambda key, tile, outs: None, [e2], [],
                        name="C2", keymap=lambda k: 0)
    backend, _ = _telemetry_backend(1)
    graph = ttg.TaskGraph([gen_tt, c1_tt, c2_tt])
    # The sanitizer must run (RACE004 consumes its SAN003 instants) but
    # in collect mode, so the raise below comes from the fence-time race
    # detector alone.
    ex = graph.executable(backend, sanitize=True, shardsafe=True)
    ex.strict = True
    ex.invoke(gen_tt, 0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with pytest.raises(SanitizerError) as exc:
            ex.fence()
    assert str(exc.value.rule).startswith("RACE")


def test_round_trip_through_jsonl_preserves_race_findings(tmp_path):
    from repro.telemetry.export import read_jsonl, write_jsonl

    bus = _bus()
    _task(bus, "GEN", "0", 0, 0.0, 1.0)
    _dep(bus, 0, 1.0, "GEN[0]", "LOST[9]", tok=1)
    _task(bus, "R", "0", 1, 0.5, 1.5, data=[1])
    direct = detect_races(bus)
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(path, bus)
    replayed = detect_races(read_jsonl(path))
    assert [str(f) for f in replayed] == [str(f) for f in direct]
    assert _ids(replayed) == ["RACE001"]
