"""Tests for schedulers, futures, termination detection and backends."""

import pytest

from repro.linalg.tile import MatrixTile
from repro.runtime import (
    BACKENDS,
    Backend,
    BackendConfig,
    DijkstraScholten,
    Future,
    FutureError,
    MadnessBackend,
    ParsecBackend,
    TerminationDetector,
    make_backend,
)
from repro.runtime.futures import when_all
from repro.runtime.scheduler import SCHEDULER_NAMES, get_scheduler
from repro.runtime.termination import TerminationError
from repro.sim.cluster import Cluster, HAWK


# ---------------------------------------------------------------- scheduler


def test_lifo_order():
    q = get_scheduler("lifo")
    for i in range(3):
        q.push(i)
    assert [q.pop() for _ in range(3)] == [2, 1, 0]


def test_fifo_order():
    q = get_scheduler("fifo")
    for i in range(3):
        q.push(i)
    assert [q.pop() for _ in range(3)] == [0, 1, 2]


def test_priority_order_and_fifo_ties():
    q = get_scheduler("priority")
    q.push("low", 1)
    q.push("hi-a", 9)
    q.push("hi-b", 9)
    q.push("mid", 5)
    assert [q.pop() for _ in range(4)] == ["hi-a", "hi-b", "mid", "low"]


def test_scheduler_len_bool():
    q = get_scheduler("fifo")
    assert not q
    q.push(1)
    assert len(q) == 1 and q


def test_unknown_scheduler():
    with pytest.raises(KeyError):
        get_scheduler("wat")
    assert set(SCHEDULER_NAMES) == {"fifo", "lifo", "priority"}


# ------------------------------------------------------------------ futures


def test_future_set_get():
    f = Future()
    assert not f.done
    f.set(7)
    assert f.done and f.get() == 7


def test_future_premature_get():
    with pytest.raises(FutureError):
        Future().get()


def test_future_double_set():
    f = Future.ready(1)
    with pytest.raises(FutureError):
        f.set(2)


def test_future_callbacks_before_and_after():
    f = Future()
    got = []
    f.add_callback(got.append)
    f.set(1)
    f.add_callback(got.append)
    assert got == [1, 1]


def test_future_then():
    f = Future()
    g = f.then(lambda v: v * 10)
    f.set(4)
    assert g.get() == 40


def test_when_all():
    fs = [Future() for _ in range(3)]
    combined = when_all(fs)
    fs[1].set("b")
    fs[0].set("a")
    assert not combined.done
    fs[2].set("c")
    assert combined.get() == ["a", "b", "c"]
    assert when_all([]).get() == []


# -------------------------------------------------------------- termination


def test_counting_detector_quiescence():
    td = TerminationDetector()
    assert td.quiescent
    td.task_created()
    assert not td.quiescent
    td.task_retired()
    assert td.quiescent
    td.validate()


def test_counting_detector_callback_fires_once_per_epoch():
    td = TerminationDetector()
    fired = []
    td.task_created()
    td.on_quiescence(lambda: fired.append(1))
    td.task_retired()
    assert fired == [1]
    # re-arm
    td.message_sent()
    td.on_quiescence(lambda: fired.append(2))
    td.message_delivered()
    assert fired == [1, 2]


def test_counting_detector_conservation_errors():
    td = TerminationDetector()
    with pytest.raises(TerminationError):
        td.message_delivered()
    td2 = TerminationDetector()
    td2.message_sent()
    with pytest.raises(TerminationError):
        td2.validate()


def test_dijkstra_scholten_simple():
    done = []
    ds = DijkstraScholten(3, on_terminate=lambda: done.append(True))
    ds.start(0)
    ds.send(0, 1)
    ds.deliver(0, 1)
    ds.send(1, 2)
    ds.deliver(1, 2)
    ds.idle(2)
    ds.idle(1)
    assert not done
    ds.idle(0)
    assert done == [True]


def test_dijkstra_scholten_ack_to_engaged_node():
    done = []
    ds = DijkstraScholten(2, on_terminate=lambda: done.append(True))
    ds.start(0)
    ds.send(0, 1)
    ds.deliver(0, 1)
    ds.send(0, 1)   # second message to an already-engaged node
    ds.deliver(0, 1)  # acked immediately
    ds.idle(1)
    ds.idle(0)
    assert done == [True]


def test_dijkstra_scholten_idle_cannot_send():
    ds = DijkstraScholten(2)
    with pytest.raises(TerminationError):
        ds.send(1, 0)


# ----------------------------------------------------------------- backends


def test_make_backend():
    assert isinstance(make_backend("parsec", Cluster(HAWK, 2)), ParsecBackend)
    assert isinstance(make_backend("MADNESS", Cluster(HAWK, 2)), MadnessBackend)
    with pytest.raises(KeyError):
        make_backend("legion", Cluster(HAWK, 2))
    assert set(BACKENDS) == {"parsec", "madness"}


def test_submit_runs_tasks_and_counts():
    be = ParsecBackend(Cluster(HAWK, 2))
    hits = []
    for i in range(5):
        be.submit(i % 2, lambda i=i: hits.append(i), flops=1e6, name="t", key=i)
    be.run()
    assert sorted(hits) == list(range(5))
    assert be.stats.tasks_executed == 5


def test_worker_pool_limits_concurrency():
    machine = HAWK.with_workers(2)
    be = ParsecBackend(Cluster(machine, 1))
    # 4 equal tasks on 2 workers take 2 rounds
    for i in range(4):
        be.submit(0, lambda: None, flops=2.5e10)  # 1 s each
    t = be.run()
    assert t == pytest.approx(2.0, rel=0.01)


def test_priority_scheduler_orders_queued_tasks():
    machine = HAWK.with_workers(1)
    be = ParsecBackend(Cluster(machine, 1))
    order = []
    # Block the single worker, then queue mixed priorities.
    be.submit(0, lambda: None, flops=2.5e9)
    be.submit(0, lambda: order.append("lo"), priority=1)
    be.submit(0, lambda: order.append("hi"), priority=10)
    be.run()
    assert order == ["hi", "lo"]


def test_post_local_runs_after_current_event():
    be = ParsecBackend(Cluster(HAWK, 1))
    seq = []

    def task():
        be.post_local(seq.append, "posted")
        seq.append("body")

    be.submit(0, task)
    be.run()
    assert seq == ["body", "posted"]


def test_send_value_roundtrip_parsec_uses_splitmd_for_big_tiles():
    be = ParsecBackend(Cluster(HAWK, 2))
    big = MatrixTile.synthetic(128, 128)  # 128 KiB > eager threshold
    got = []
    be.send_value(0, 1, big, got.append)
    be.run()
    assert got[0].shape == (128, 128)
    assert be.stats.rma_transfers == 1
    assert be.stats.splitmd_releases == 1


def test_send_value_small_tile_goes_eager():
    be = ParsecBackend(Cluster(HAWK, 2))
    small = MatrixTile.zeros(8, 8)  # 512 B <= eager threshold
    got = []
    be.send_value(0, 1, small, got.append)
    be.run()
    assert got[0].allclose(small)
    assert be.stats.rma_transfers == 0


def test_send_value_madness_never_splitmd():
    be = MadnessBackend(Cluster(HAWK, 2))
    big = MatrixTile.synthetic(256, 256)
    got = []
    be.send_value(0, 1, big, got.append)
    be.run()
    assert be.stats.rma_transfers == 0
    assert be.stats.copy_bytes > 0  # madness copies on both sides


def test_send_control():
    be = ParsecBackend(Cluster(HAWK, 2))
    got = []
    be.send_control(0, 1, lambda: got.append(True))
    be.run()
    assert got == [True]


def test_maybe_copy_local_modes():
    bep = ParsecBackend(Cluster(HAWK, 1))
    tile = MatrixTile.zeros(4, 4)
    v, d = bep.maybe_copy_local(tile, "cref")
    assert v is tile and d == 0.0  # parsec owns the data: no copy
    v, d = bep.maybe_copy_local(tile, "move")
    assert v is tile and d == 0.0
    v, d = bep.maybe_copy_local(tile, "value")
    assert v is not tile and v.allclose(tile) and d > 0.0

    bem = MadnessBackend(Cluster(HAWK, 1))
    v, d = bem.maybe_copy_local(tile, "cref")
    assert v is not tile and d > 0.0  # madness copies even const-ref


def test_run_validates_termination():
    be = ParsecBackend(Cluster(HAWK, 2))
    be.termination.message_sent()  # never delivered
    with pytest.raises(TerminationError):
        be.run()


def test_backend_config_affects_scheduler():
    cfg = BackendConfig(scheduler="fifo")
    machine = HAWK.with_workers(1)
    be = ParsecBackend(Cluster(machine, 1), config=cfg)
    order = []
    be.submit(0, lambda: None, flops=2.5e9)
    be.submit(0, lambda: order.append("first"), priority=0)
    be.submit(0, lambda: order.append("second"), priority=99)
    be.run()
    assert order == ["first", "second"]  # fifo ignores priorities
