"""Tests for the heterogeneous (accelerator) extension.

The paper lists heterogeneous-platform support as future work; this
extension adds device slots to the node model, per-template device maps,
and PCIe-transfer accounting with a residency cache.
"""

import numpy as np
import pytest
from dataclasses import replace

from repro import core as ttg
from repro.linalg import BlockCyclicDistribution, TiledMatrix, spd_matrix
from repro.runtime import ParsecBackend
from repro.sim.cluster import Cluster, HAWK, MachineSpec
from repro.sim.node import NodeSpec


def gpu_machine(gpus=2, gpu_flops=500.0e9) -> MachineSpec:
    node = replace(HAWK.node, workers=4, gpus=gpus, gpu_flops=gpu_flops,
                   pcie_bandwidth=12.0e9)
    return replace(HAWK, node=node)


def test_node_spec_validation():
    with pytest.raises(ValueError):
        NodeSpec(gpus=-1)
    with pytest.raises(ValueError):
        NodeSpec(gpus=2, gpu_flops=0.0)
    with pytest.raises(ValueError):
        NodeSpec(gpus=0).gpu_compute_time(1.0)


def test_gpu_compute_time_includes_pcie():
    node = NodeSpec(gpus=1, gpu_flops=1e12, pcie_bandwidth=1e10,
                    task_overhead=0.0)
    t = node.gpu_compute_time(1e12, transfer_bytes=1e10)
    assert t == pytest.approx(2.0)


def test_gpu_task_requires_gpu():
    be = ParsecBackend(Cluster(HAWK, 1))  # no gpus on the preset
    with pytest.raises(RuntimeError):
        be.submit(0, lambda: None, device="gpu")
        be.run()


def test_gpu_tasks_execute_and_count():
    be = ParsecBackend(Cluster(gpu_machine(), 1))
    hits = []
    for i in range(4):
        be.submit(0, lambda i=i: hits.append(i), flops=1e9, device="gpu")
    be.run()
    assert sorted(hits) == [0, 1, 2, 3]
    assert be.pools[0].gpu_tasks_executed == 4


def test_gpu_slots_limit_concurrency():
    machine = gpu_machine(gpus=2, gpu_flops=1e9)
    be = ParsecBackend(Cluster(machine, 1))
    for _ in range(4):
        be.submit(0, lambda: None, flops=1e9, device="gpu")  # 1 s each
    t = be.run()
    assert t == pytest.approx(2.0, rel=0.02)  # 4 tasks over 2 slots


def test_residency_cache_avoids_repeat_transfers():
    machine = gpu_machine(gpus=1)
    be = ParsecBackend(Cluster(machine, 1))
    from repro.linalg.tile import MatrixTile

    tile = MatrixTile.synthetic(256, 256)
    for _ in range(3):
        be.submit(0, lambda: None, flops=1e6, device="gpu", inputs=(tile,))
    be.run()
    assert be.pools[0].gpu_transfer_bytes == tile.nbytes  # paid once


def test_devicemap_constant_and_callable():
    tt1 = ttg.make_tt(lambda k, outs: None, [], []).set_devicemap("gpu")
    assert tt1.device(0) == "gpu"
    tt2 = ttg.make_tt(lambda k, outs: None, [], []).set_devicemap(
        lambda k: "gpu" if k % 2 else "cpu"
    )
    assert tt2.device(1) == "gpu" and tt2.device(2) == "cpu"
    tt3 = ttg.make_tt(lambda k, outs: None, [], [])
    assert tt3.device(0) == "cpu"


def test_gpu_cholesky_correct_and_faster():
    """Offloading the O(n^3) kernels to the device speeds up the factor
    and keeps it bit-correct."""
    n, b, nodes = 128, 32, 2
    a = spd_matrix(n, seed=9)
    machine = gpu_machine(gpus=2, gpu_flops=400.0e9)

    def run(offload):
        A = TiledMatrix.from_dense(a, b, BlockCyclicDistribution.for_ranks(nodes),
                                   lower_only=True)
        result = TiledMatrix(n, b, A.dist)
        from repro.apps.cholesky.graph import build_cholesky_graph

        graph, initiator = build_cholesky_graph(A, result)
        if offload:
            for tt in graph.tts:
                if tt.name in ("TRSM", "SYRK", "GEMM"):
                    tt.set_devicemap("gpu")
        backend = ParsecBackend(Cluster(machine, nodes))
        ex = graph.executable(backend)
        for r in range(nodes):
            ex.invoke(initiator, r)
        makespan = ex.fence()
        return result, makespan, backend

    cpu_res, t_cpu, _ = run(offload=False)
    gpu_res, t_gpu, be = run(offload=True)
    L = np.tril(gpu_res.L.to_dense()) if hasattr(gpu_res, "L") else np.tril(gpu_res.to_dense())
    assert np.allclose(np.tril(gpu_res.to_dense()), np.linalg.cholesky(a))
    assert np.allclose(gpu_res.to_dense(), cpu_res.to_dense())
    # 400 GF device vs 4x25 GF host: the offloaded run must be faster.
    assert t_gpu < t_cpu
    assert sum(p.gpu_tasks_executed for p in be.pools) > 0


def test_gpu_tasks_traced_with_device_label():
    from repro.sim import Tracer

    tracer = Tracer()
    machine = gpu_machine()
    be = ParsecBackend(Cluster(machine, 1), tracer=tracer)
    be.submit(0, lambda: None, flops=1e6, device="gpu", name="K")
    be.run()
    assert tracer.tasks[0].name == "K@gpu"
    assert tracer.tasks[0].worker >= machine.node.workers  # device lanes
