"""Tests for TiledMatrix, block-cyclic distribution, kernels, generators."""

import numpy as np
import pytest

from repro.linalg.blocksparse import BlockSparseMatrix, IrregularTiling
from repro.linalg.generators import random_weight_matrix, spd_matrix, yukawa_blocksparse
from repro.linalg.kernels import (
    cholesky_total_flops,
    effective_flops,
    fw_closure,
    fw_flops,
    fw_kernel,
    fw_total_flops,
    gemm,
    gemm_accumulate,
    gemm_flops,
    kernel_efficiency,
    potrf,
    potrf_flops,
    syrk,
    syrk_flops,
    trsm,
    trsm_flops,
)
from repro.linalg.tile import MatrixTile
from repro.linalg.tiled_matrix import BlockCyclicDistribution, TiledMatrix, grid_dims


# -------------------------------------------------------------- distribution


@pytest.mark.parametrize("p,expect", [(1, (1, 1)), (4, (2, 2)), (6, (2, 3)),
                                      (7, (1, 7)), (12, (3, 4)), (64, (8, 8))])
def test_grid_dims(p, expect):
    assert grid_dims(p) == expect


def test_block_cyclic_partition():
    dist = BlockCyclicDistribution(2, 3)
    nt = 7
    owned = {}
    for r in range(dist.nranks):
        for ij in dist.tiles_of_rank(r, nt):
            assert ij not in owned
            owned[ij] = r
    assert len(owned) == nt * nt
    for (i, j), r in owned.items():
        assert dist.rank_of(i, j) == r


def test_distribution_validation():
    with pytest.raises(ValueError):
        BlockCyclicDistribution(0, 1)


# --------------------------------------------------------------- TiledMatrix


def test_from_to_dense_roundtrip():
    a = np.arange(49.0).reshape(7, 7)
    m = TiledMatrix.from_dense(a, 3)
    assert m.nt == 3
    assert m.tile_rows(2) == 1  # ragged
    assert np.array_equal(m.to_dense(), a)


def test_lower_only_storage():
    a = spd_matrix(8, seed=1)
    m = TiledMatrix.from_dense(a, 4, lower_only=True)
    assert m.has_tile(1, 0) and not m.has_tile(0, 1)
    dense = m.to_dense()
    assert np.array_equal(np.tril(dense), np.tril(a))


def test_tile_shape_validation():
    m = TiledMatrix(8, 4)
    with pytest.raises(ValueError):
        m.set_tile(0, 0, MatrixTile.zeros(3, 3))
    with pytest.raises(IndexError):
        m.tile_rows(5)


def test_missing_tile_raises_unless_synthetic():
    m = TiledMatrix(8, 4)
    with pytest.raises(KeyError):
        m.tile_at(0, 0)
    s = TiledMatrix(8, 4, synthetic=True)
    t = s.tile_at(0, 0)
    assert t.is_synthetic and t.shape == (4, 4)


def test_invalid_sizes():
    with pytest.raises(ValueError):
        TiledMatrix(0, 4)
    with pytest.raises(ValueError):
        TiledMatrix.from_dense(np.zeros((3, 4)), 2)


# ------------------------------------------------------------------- kernels


def test_potrf_kernel():
    a = spd_matrix(8, seed=2)
    t = MatrixTile(8, 8, a.copy())
    potrf(t)
    assert np.allclose(t.data, np.linalg.cholesky(a))


def test_potrf_failure():
    from repro.linalg.kernels import KernelError

    with pytest.raises(KernelError):
        potrf(MatrixTile(2, 2, -np.eye(2)))


def test_trsm_kernel():
    rng = np.random.default_rng(3)
    l = np.linalg.cholesky(spd_matrix(4, seed=3))
    b = rng.standard_normal((6, 4))
    t = MatrixTile(6, 4, b.copy())
    trsm(MatrixTile(4, 4, l), t)
    assert np.allclose(t.data @ l.T, b)


def test_syrk_kernel():
    rng = np.random.default_rng(4)
    a = rng.standard_normal((4, 4))
    c = rng.standard_normal((4, 4))
    t = MatrixTile(4, 4, c.copy())
    syrk(MatrixTile(4, 4, a), t)
    assert np.allclose(t.data, c - a @ a.T)


def test_gemm_kernel():
    rng = np.random.default_rng(5)
    a, b, c = (rng.standard_normal((4, 4)) for _ in range(3))
    t = MatrixTile(4, 4, c.copy())
    gemm(MatrixTile(4, 4, a), MatrixTile(4, 4, b), t)
    assert np.allclose(t.data, c - a @ b.T)


def test_gemm_accumulate_rectangular():
    rng = np.random.default_rng(6)
    a = rng.standard_normal((3, 5))
    b = rng.standard_normal((5, 2))
    c = rng.standard_normal((3, 2))
    t = MatrixTile(3, 2, c.copy())
    gemm_accumulate(MatrixTile(3, 5, a), MatrixTile(5, 2, b), t)
    assert np.allclose(t.data, c + a @ b)


def test_fw_kernel_minplus():
    rng = np.random.default_rng(7)
    wik = rng.uniform(0, 10, (3, 3))
    wkj = rng.uniform(0, 10, (3, 3))
    wij = rng.uniform(0, 10, (3, 3))
    t = MatrixTile(3, 3, wij.copy())
    fw_kernel(MatrixTile(3, 3, wik), MatrixTile(3, 3, wkj), t)
    expect = np.minimum(wij, np.min(wik[:, :, None] + wkj[None, :, :], axis=1))
    assert np.allclose(t.data, expect)


def test_fw_closure_matches_reference():
    from repro.apps.floydwarshall import fw_reference

    w = random_weight_matrix(8, seed=8)
    t = MatrixTile(8, 8, w.copy())
    fw_closure(t)
    assert np.allclose(t.data, fw_reference(w))


def test_kernels_noop_on_synthetic():
    s = MatrixTile.synthetic(4, 4)
    potrf(s)
    trsm(s, s)
    syrk(s, s)
    gemm(s, s, s)
    fw_kernel(s, s, s)
    fw_closure(s)
    assert s.is_synthetic


def test_flop_counts():
    assert potrf_flops(8) == pytest.approx(8**3 / 3)
    assert trsm_flops(8) == 512
    assert syrk_flops(8) == 512
    assert gemm_flops(2, 3, 4) == 48
    assert fw_flops(8) == 1024
    assert cholesky_total_flops(100) == pytest.approx(1e6 / 3)
    assert fw_total_flops(100) == 2e6


def test_kernel_efficiency_model():
    assert kernel_efficiency(48) == pytest.approx(0.5)
    assert kernel_efficiency(512) > 0.9
    assert effective_flops(100.0, 48) == pytest.approx(200.0)
    # efficiency is monotone in blocking
    effs = [kernel_efficiency(b) for b in (16, 32, 64, 128, 256)]
    assert effs == sorted(effs)


# ----------------------------------------------------------------- tilings


def test_irregular_tiling_offsets():
    t = IrregularTiling([3, 5, 2])
    assert t.n == 10 and t.nblocks == 3
    assert t.block_range(1) == (3, 8)


def test_irregular_tiling_validation():
    with pytest.raises(ValueError):
        IrregularTiling([])
    with pytest.raises(ValueError):
        IrregularTiling([2, 0])


def test_group_to_target():
    t = IrregularTiling.group_to_target([4, 4, 4, 4, 4], target=10)
    assert t.sizes == [8, 8, 4]
    with pytest.raises(ValueError):
        IrregularTiling.group_to_target([20], target=10)


def test_blocksparse_roundtrip_and_occupancy():
    rt = IrregularTiling([2, 3])
    a = np.zeros((5, 5))
    a[0:2, 0:2] = 1.0
    m = BlockSparseMatrix.from_dense(a, rt, rt)
    assert (0, 0) in m
    assert m.occupancy() == pytest.approx(0.25)
    assert np.array_equal(m.to_dense(), a)
    assert m.nnz_elements() == 4
    assert m.stored_bytes() == 32


def test_blocksparse_prune():
    rt = IrregularTiling([2, 2])
    m = BlockSparseMatrix(rt, rt)
    m.set_block(0, 0, MatrixTile(2, 2, np.full((2, 2), 1.0)))
    m.set_block(1, 1, MatrixTile(2, 2, np.full((2, 2), 1e-12)))
    pruned = m.prune(1e-8)
    assert (0, 0) in pruned and (1, 1) not in pruned


def test_blocksparse_shape_validation():
    rt = IrregularTiling([2, 3])
    m = BlockSparseMatrix(rt, rt)
    with pytest.raises(ValueError):
        m.set_block(0, 0, MatrixTile.zeros(3, 3))


# --------------------------------------------------------------- generators


def test_spd_matrix_is_spd():
    a = spd_matrix(16, seed=0)
    assert np.allclose(a, a.T)
    assert np.all(np.linalg.eigvalsh(a) > 0)


def test_random_weight_matrix_properties():
    w = random_weight_matrix(10, seed=0)
    assert np.all(np.diag(w) == 0)
    assert np.all(w >= 0)
    assert np.array_equal(w, random_weight_matrix(10, seed=0))


def test_yukawa_structure():
    m = yukawa_blocksparse(60, target_tile=32, seed=0)
    nr, nc = m.nblocks
    assert nr == nc
    assert all(s <= 32 for s in m.row_tiling.sizes)
    # diagonal blocks present (self-interaction is strongest)
    assert all((i, i) in m for i in range(nr))
    # symmetric sparsity pattern (distances are symmetric)
    for (i, j) in m.block_keys():
        assert (j, i) in m


def test_yukawa_sparsity_grows_with_system():
    small = yukawa_blocksparse(30, target_tile=32, decay_length=2.0, seed=1)
    big = yukawa_blocksparse(300, target_tile=32, decay_length=2.0, seed=1)
    assert big.occupancy() < small.occupancy()


def test_yukawa_synthetic_mode():
    m = yukawa_blocksparse(20, target_tile=32, seed=2, synthetic=True)
    for _, t in m.blocks():
        assert t.is_synthetic
